#include "session/design_snapshot.hpp"

#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/metrics.hpp"

namespace tka::session {
namespace {

/// Live-snapshot registry backing stats(). Guarded by a plain mutex;
/// snapshots are created/destroyed at commit and teardown rates, never on
/// per-request hot paths.
struct SnapshotRegistry {
  std::mutex mu;
  std::unordered_set<const DesignSnapshot*> live;
};

SnapshotRegistry& snapshot_registry() {
  static SnapshotRegistry* reg = new SnapshotRegistry();  // never destroyed
  return *reg;
}

/// Collects every COW storage chunk of a design as key -> deep bytes.
void collect_chunks(const net::Netlist& nl, const layout::Parasitics& par,
                    std::unordered_map<const void*, std::size_t>* out) {
  auto take = [out](const void* key, std::size_t bytes) {
    out->emplace(key, bytes);
  };
  nl.visit_storage(take);
  par.visit_storage(take);
}

}  // namespace

void apply_edit_to_design(net::Netlist& nl, layout::Parasitics& par,
                          const WhatIfEdit& edit) {
  for (layout::CapId id : edit.zero_couplings) par.zero_coupling(id);
  for (layout::CapId id : edit.shield_couplings) par.shield_coupling(id);
  for (const WhatIfEdit::Resize& r : edit.resizes) {
    nl.resize_gate(r.gate, r.cell_index);
  }
}

DesignSnapshot::DesignSnapshot(std::uint64_t epoch, net::Netlist nl,
                               layout::Parasitics par,
                               const sta::DelayModelOptions& model_opt,
                               const DesignSnapshot* parent)
    : epoch_(epoch),
      nl_(std::make_unique<net::Netlist>(std::move(nl))),
      par_(std::make_unique<layout::Parasitics>(std::move(par))),
      model_(std::make_unique<sta::DelayModel>(*nl_, *par_, model_opt)),
      calc_(std::make_unique<noise::AnalyticCouplingCalculator>(*par_,
                                                                *model_)) {
  // Bytes introduced over the parent: chunks of this design that the
  // parent does not reference. The base snapshot owns everything.
  std::unordered_map<const void*, std::size_t> mine;
  collect_chunks(*nl_, *par_, &mine);
  if (parent != nullptr) {
    std::unordered_map<const void*, std::size_t> theirs;
    collect_chunks(parent->netlist(), parent->parasitics(), &theirs);
    for (const auto& [key, bytes] : mine) {
      if (!theirs.contains(key)) unique_bytes_ += bytes;
    }
  } else {
    for (const auto& [key, bytes] : mine) unique_bytes_ += bytes;
  }
  tracked_bytes_.set(static_cast<std::int64_t>(unique_bytes_));

  {
    SnapshotRegistry& reg = snapshot_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.live.insert(this);
  }
  publish_gauges();
}

DesignSnapshot::~DesignSnapshot() {
  {
    SnapshotRegistry& reg = snapshot_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.live.erase(this);
  }
  publish_gauges();
}

std::shared_ptr<const DesignSnapshot> DesignSnapshot::make_base(
    net::Netlist nl, layout::Parasitics par,
    const sta::DelayModelOptions& model_opt) {
  return std::shared_ptr<const DesignSnapshot>(new DesignSnapshot(
      0, std::move(nl), std::move(par), model_opt, nullptr));
}

std::shared_ptr<const DesignSnapshot> DesignSnapshot::apply(
    const WhatIfEdit& edit) const {
  net::Netlist nl(*nl_);         // COW copy: shares every chunk
  layout::Parasitics par(*par_);
  apply_edit_to_design(nl, par, edit);  // detaches only touched chunks
  return std::shared_ptr<const DesignSnapshot>(new DesignSnapshot(
      epoch_ + 1, std::move(nl), std::move(par), model_->options(), this));
}

DesignSnapshot::Stats DesignSnapshot::stats() {
  Stats out;
  std::unordered_map<const void*, std::size_t> distinct;
  SnapshotRegistry& reg = snapshot_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  out.live = reg.live.size();
  for (const DesignSnapshot* snap : reg.live) {
    std::size_t logical = 0;
    auto take = [&](const void* key, std::size_t bytes) {
      logical += bytes;
      distinct.emplace(key, bytes);
    };
    snap->netlist().visit_storage(take);
    snap->parasitics().visit_storage(take);
    out.logical_bytes += logical;
  }
  for (const auto& [key, bytes] : distinct) out.resident_bytes += bytes;
  return out;
}

void DesignSnapshot::publish_gauges() {
#if TKA_OBS_ENABLED
  const Stats s = stats();
  obs::MetricsRegistry& reg = obs::registry();
  reg.gauge("server.snapshots_live").set(static_cast<double>(s.live));
  reg.gauge("server.snapshot_bytes_logical")
      .set(static_cast<double>(s.logical_bytes));
  reg.gauge("server.snapshot_bytes_resident")
      .set(static_cast<double>(s.resident_bytes));
  reg.gauge("server.snapshot_bytes_shared")
      .set(static_cast<double>(s.shared_bytes()));
#endif
}

}  // namespace tka::session
