// A what-if repair edit against a session's private design copy.
//
// Each edit is one of the physical fixes a noise-repair loop applies after
// reading a top-k report: decouple a coupling (zero it), shield it (zero it
// and add its value to both endpoints' ground load), or swap a victim's
// driver for a stronger drive variant of the same cell function.
#pragma once

#include <vector>

#include "layout/parasitics.hpp"
#include "net/netlist.hpp"

namespace tka::session {

struct WhatIfEdit {
  /// Couplings fixed by decoupling: cap value -> 0.
  std::vector<layout::CapId> zero_couplings;
  /// Couplings fixed by shield insertion: cap -> 0, value folded into both
  /// endpoints' ground capacitance (the load stays, the noise path goes).
  std::vector<layout::CapId> shield_couplings;

  /// Driver swap: replace the gate's cell with a same-function,
  /// same-pin-count drive variant from the library.
  struct Resize {
    net::GateId gate = net::kInvalidGate;
    std::size_t cell_index = 0;
  };
  std::vector<Resize> resizes;

  bool empty() const {
    return zero_couplings.empty() && shield_couplings.empty() && resizes.empty();
  }
};

}  // namespace tka::session
