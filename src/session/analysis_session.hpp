// AnalysisSession: the persistent orchestrator of the staged top-k
// pipeline (docs/ARCHITECTURE.md).
//
// A session owns the netlist/parasitics view, the delay model, the
// envelope caches, the false-aggressor filter state and the recorded
// baseline fixpoints, and keeps them warm across queries:
//
//   run(options)   — cold query: primes the baseline and enumerates every
//                    victim. Bit-identical (values and counters) to what
//                    the old monolithic TopkEngine::run produced;
//                    TopkEngine::run is now a thin wrapper over this.
//   what_if(edit)  — applies a repair edit to the session's private design
//                    copy, re-converges the baseline incrementally, and
//                    re-enumerates only the victims whose inputs actually
//                    changed. Dirtiness spreads change-driven with the
//                    sweep: a rebuilt list is compared against its memoized
//                    predecessor, and only a real difference dirties its
//                    readers. The result is bit-identical to a cold run()
//                    on the edited design, at every thread count.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "noise/coupling_calc.hpp"
#include "obs/memory.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/wavefront.hpp"
#include "session/what_if.hpp"
#include "topk/stages/stage_context.hpp"

namespace tka::session {

class DesignSnapshot;

struct SessionOptions {
  /// Keep every cardinality layer of candidate lists (and the elimination
  /// sweep-0 snapshots) alive between queries — required for what_if().
  /// One-shot runs set false and get the two-layer rolling memory of the
  /// old engine.
  bool retain_candidates = true;
};

class AnalysisSession {
 public:
  /// Borrowing session: analyzes an externally owned design. what_if() is
  /// unavailable (the design cannot be edited through the session).
  AnalysisSession(const net::Netlist& nl, const layout::Parasitics& par,
                  const sta::DelayModel& model,
                  const noise::CouplingCalculator& calc,
                  SessionOptions options = {});

  /// Owning session: takes private, editable copies of the netlist and
  /// parasitics (the cell library referenced by `nl` must outlive the
  /// session) and builds its own delay model and coupling calculator.
  AnalysisSession(net::Netlist nl, layout::Parasitics par,
                  const sta::DelayModelOptions& model_options,
                  SessionOptions options = {});

  /// Session over a pinned immutable snapshot: an owning session whose
  /// private copies are COW — structurally sharing the snapshot's storage
  /// until a what_if edit detaches a chunk. The snapshot stays alive
  /// (pinned) for the session's lifetime, so building one is O(chunk
  /// table), not O(design). This is how shard workers serve queries
  /// without replica copies.
  explicit AnalysisSession(std::shared_ptr<const DesignSnapshot> snapshot,
                           SessionOptions options = {});

  ~AnalysisSession();
  AnalysisSession(const AnalysisSession&) = delete;
  AnalysisSession& operator=(const AnalysisSession&) = delete;

  /// Cold query: (re)primes the baseline state and enumerates everything.
  topk::TopkResult run(const topk::TopkOptions& options);

  /// Incremental what-if query after a repair edit. Requires an owning,
  /// primed session with retain_candidates on. Uses the options of the
  /// last run().
  topk::TopkResult what_if(const WhatIfEdit& edit);

  bool primed() const { return primed_; }
  /// The pinned snapshot (null unless snapshot-constructed).
  const std::shared_ptr<const DesignSnapshot>& snapshot() const {
    return snap_;
  }
  const net::Netlist& netlist() const { return *design_.nl; }
  const layout::Parasitics& parasitics() const { return *design_.par; }
  const topk::TopkOptions& options() const { return opt_; }
  /// The mask=all fixpoint report of the current design state.
  const noise::NoiseReport& baseline_report() const;

 private:
  /// `seeds` lists the victims the baseline refresh invalidated; nullptr
  /// means a cold query (every victim enumerated).
  topk::TopkResult query(const std::vector<net::NetId>* seeds);
  double evaluate_members(std::span<const layout::CapId> members,
                          const noise::IterativeOptions& iterative, bool warm);

  // Owning storage; null in borrowing sessions. Declaration order matters:
  // the model binds the copies, the calculator binds the model.
  std::unique_ptr<net::Netlist> nl_own_;
  std::unique_ptr<layout::Parasitics> par_own_;
  std::unique_ptr<sta::DelayModel> model_own_;
  std::unique_ptr<noise::CouplingCalculator> calc_own_;
  /// Keeps the source snapshot alive while the owning copies share its
  /// storage chunks (null for non-snapshot sessions).
  std::shared_ptr<const DesignSnapshot> snap_;

  topk::stages::DesignRef design_;
  SessionOptions sopt_;
  topk::TopkOptions opt_;
  noise::IterativeOptions iter_opt_;
  int threads_ = 1;
  bool primed_ = false;

  topk::stages::BaselineState base_;
  topk::stages::SweepMemo memo_;
  std::unique_ptr<runtime::Wavefront> wavefront_;
  /// Dependency graph over nets for cold sweeps: fanin edges (pseudo
  /// propagation) plus, in elimination mode, lower-level coupled partners
  /// (current-sweep higher-order reads). Rebuilt with the wavefront on
  /// every cold prime — it depends on the query mode and the baseline's
  /// active caps. Warm what_if queries keep the level-loop scheduler
  /// (docs/SCHEDULER.md, migration note).
  std::unique_ptr<runtime::TaskGraph> sweep_graph_;
  /// Approximate footprint of the memoized enumeration state, refreshed at
  /// the end of every query and published as mem.* gauges. Contributions
  /// auto-release on session teardown (the TrackedBytes balance invariant).
  obs::TrackedBytes candidate_bytes_{"mem.candidate_tables_bytes"};
  obs::TrackedBytes memo_bytes_{"mem.whatif_memo_bytes"};
  /// Addition-mode warm-evaluation base: the mask=none fixpoint, primed on
  /// the first what_if (cold runs never need it).
  std::unique_ptr<noise::IncrementalFixpoint> fp_none_;
};

}  // namespace tka::session
