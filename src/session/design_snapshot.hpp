// DesignSnapshot: an epoch-stamped, refcounted, immutable view of one
// design state — netlist + parasitics plus the derived read-only state
// (delay model, coupling calculator) every query needs.
//
// The serving layer publishes one snapshot per committed epoch. Readers
// pin a snapshot (a shared_ptr copy) for the duration of a job instead of
// owning a private replica; a what_if commit produces the next snapshot by
// copy-on-write — the Netlist/Parasitics copies share every storage chunk
// the edit did not touch (util::CowVec), so the chain costs
// O(design + edits), not O(snapshots × design).
//
// Every live snapshot registers in a process-wide table so the serving
// gauges (server.snapshots_live, server.snapshot_bytes_*) can report how
// much storage is logically referenced vs actually resident; the
// difference is the bytes COW sharing saved. Each snapshot also tracks the
// bytes it introduced over its parent via TrackedBytes
// ("mem.snapshot_bytes"), which returns to zero when the chain is torn
// down — the balance invariant the lifecycle tests assert.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "layout/parasitics.hpp"
#include "net/netlist.hpp"
#include "noise/coupling_calc.hpp"
#include "obs/memory.hpp"
#include "session/what_if.hpp"
#include "sta/delay_model.hpp"

namespace tka::session {

/// Applies one repair edit to a design — the same three primitive
/// operations AnalysisSession::what_if performs on its own copies, so a
/// snapshot chain replays to exactly the design state the writer holds.
void apply_edit_to_design(net::Netlist& nl, layout::Parasitics& par,
                          const WhatIfEdit& edit);

class DesignSnapshot {
 public:
  /// The epoch-0 snapshot of a freshly loaded design. The cell library
  /// referenced by `nl` must outlive the snapshot chain.
  static std::shared_ptr<const DesignSnapshot> make_base(
      net::Netlist nl, layout::Parasitics par,
      const sta::DelayModelOptions& model_opt);

  /// The epoch+1 successor: applies `edit` to COW copies of this
  /// snapshot's design, cloning only the storage chunks the edit touches.
  std::shared_ptr<const DesignSnapshot> apply(const WhatIfEdit& edit) const;

  ~DesignSnapshot();
  DesignSnapshot(const DesignSnapshot&) = delete;
  DesignSnapshot& operator=(const DesignSnapshot&) = delete;

  std::uint64_t epoch() const { return epoch_; }
  const net::Netlist& netlist() const { return *nl_; }
  const layout::Parasitics& parasitics() const { return *par_; }
  const sta::DelayModel& model() const { return *model_; }
  const noise::CouplingCalculator& calc() const { return *calc_; }
  const sta::DelayModelOptions& model_options() const {
    return model_->options();
  }

  /// Approximate bytes of COW storage this snapshot introduced over its
  /// parent (the whole design for the base snapshot).
  std::size_t unique_bytes() const { return unique_bytes_; }

  struct Stats {
    std::size_t live = 0;            ///< snapshots currently alive
    std::size_t logical_bytes = 0;   ///< sum of per-snapshot deep bytes
    std::size_t resident_bytes = 0;  ///< distinct chunk bytes actually held
    std::size_t shared_bytes() const {
      return logical_bytes > resident_bytes ? logical_bytes - resident_bytes
                                            : 0;
    }
  };
  /// Process-wide stats over every live snapshot (all shards). Walks each
  /// snapshot's chunk table under a registry lock — cheap at serving
  /// commit rates, not meant for per-request paths.
  static Stats stats();

  /// Publishes stats() to the server.snapshots_live /
  /// server.snapshot_bytes_{logical,resident,shared} gauges.
  static void publish_gauges();

 private:
  DesignSnapshot(std::uint64_t epoch, net::Netlist nl, layout::Parasitics par,
                 const sta::DelayModelOptions& model_opt,
                 const DesignSnapshot* parent);

  const std::uint64_t epoch_;
  // Declaration order matters: the model binds the copies, the calculator
  // binds the model.
  std::unique_ptr<net::Netlist> nl_;
  std::unique_ptr<layout::Parasitics> par_;
  std::unique_ptr<sta::DelayModel> model_;
  std::unique_ptr<noise::AnalyticCouplingCalculator> calc_;
  std::size_t unique_bytes_ = 0;
  obs::TrackedBytes tracked_bytes_{"mem.snapshot_bytes"};
};

}  // namespace tka::session
