#include "session/analysis_session.hpp"

#include <algorithm>
#include <utility>

#include "session/design_snapshot.hpp"

#include "obs/obs.hpp"
#include "runtime/runtime.hpp"
#include "wave/point_store.hpp"
#include "topk/stages/baseline_stage.hpp"
#include "topk/stages/candidate_stage.hpp"
#include "topk/stages/evaluate_stage.hpp"
#include "topk/stages/prune_stage.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace tka::session {

using topk::stages::BaselineStage;
using topk::stages::BestSnap;
using topk::stages::CandidateStage;
using topk::stages::EvaluateStage;
using topk::stages::PruneStage;
using topk::stages::QueryContext;

namespace {

// Per-thread waveform-pool bytes left parked after the per-query trim: a
// warm set large enough that the next query's small merges hit the cache
// immediately, small enough that idle shard workers stay lean.
constexpr std::size_t kPoolKeepBytesPerThread = 256u << 10;

// The cold-sweep dependency graph: one task per net (task index == net id),
// with an edge u -> v for every intra-sweep read v makes of u's
// current-sweep state. That is (a) v's driver-gate fanins — pseudo
// propagation reads their reduced lists via sets_of — and (b) in
// elimination mode, coupled partners at a strictly lower level, whose
// published winner the higher-order atoms read through ho_of (same- or
// higher-level partners read the immutable previous-sweep buffer instead,
// so they need no edge). Duplicates (a fanin that is also a partner)
// are deduplicated by the graph itself.
std::unique_ptr<runtime::TaskGraph> build_sweep_graph(
    const net::Netlist& nl, const layout::Parasitics& par,
    const topk::stages::BaselineState& base, bool addition,
    const runtime::Wavefront& wf) {
  auto graph = std::make_unique<runtime::TaskGraph>(nl.num_nets());
  for (net::NetId v = 0; v < nl.num_nets(); ++v) {
    const net::Net& n = nl.net(v);
    if (n.driver != net::kInvalidGate) {
      for (net::NetId u : nl.gate(n.driver).inputs) graph->add_edge(u, v);
    }
    if (!addition) {
      for (layout::CapId cap : base.active_caps[v]) {
        const net::NetId a = par.coupling(cap).other(v);
        if (wf.level_of(a) < wf.level_of(v)) graph->add_edge(a, v);
      }
    }
  }
  return graph;
}

}  // namespace

AnalysisSession::AnalysisSession(const net::Netlist& nl,
                                 const layout::Parasitics& par,
                                 const sta::DelayModel& model,
                                 const noise::CouplingCalculator& calc,
                                 SessionOptions options)
    : sopt_(options) {
  design_ = {&nl, &par, &model, &calc};
}

AnalysisSession::AnalysisSession(net::Netlist nl, layout::Parasitics par,
                                 const sta::DelayModelOptions& model_options,
                                 SessionOptions options)
    : nl_own_(std::make_unique<net::Netlist>(std::move(nl))),
      par_own_(std::make_unique<layout::Parasitics>(std::move(par))),
      model_own_(std::make_unique<sta::DelayModel>(*nl_own_, *par_own_,
                                                   model_options)),
      calc_own_(std::make_unique<noise::AnalyticCouplingCalculator>(
          *par_own_, *model_own_)),
      sopt_(options) {
  design_ = {nl_own_.get(), par_own_.get(), model_own_.get(), calc_own_.get()};
}

AnalysisSession::AnalysisSession(
    std::shared_ptr<const DesignSnapshot> snapshot, SessionOptions options)
    : AnalysisSession(net::Netlist(snapshot->netlist()),
                      layout::Parasitics(snapshot->parasitics()),
                      snapshot->model_options(), options) {
  snap_ = std::move(snapshot);
}

AnalysisSession::~AnalysisSession() = default;

const noise::NoiseReport& AnalysisSession::baseline_report() const {
  TKA_CHECK(primed_, "baseline_report requires a primed session");
  return base_.fixpoint->report();
}

topk::TopkResult AnalysisSession::run(const topk::TopkOptions& options) {
  opt_ = options;
  threads_ = runtime::resolve_threads(opt_.threads);
  // The fixpoints the pipeline launches (baseline, re-evaluation) inherit
  // the run's worker count unless the caller pinned their own.
  iter_opt_ = opt_.iterative;
  if (iter_opt_.threads == 0) iter_opt_.threads = threads_;
  primed_ = false;
  topk::TopkResult result = query(nullptr);
  primed_ = true;
  return result;
}

topk::TopkResult AnalysisSession::what_if(const WhatIfEdit& edit) {
  TKA_CHECK(nl_own_ != nullptr, "what_if requires an owning session");
  TKA_CHECK(primed_, "what_if requires a primed session (call run() first)");
  TKA_CHECK(sopt_.retain_candidates,
            "what_if requires SessionOptions::retain_candidates");
  obs::MetricsRegistry& reg = obs::registry();
  reg.counter("session.whatif_edits")
      .add(edit.zero_couplings.size() + edit.shield_couplings.size() +
           edit.resizes.size());

  // Apply the edit to the private design copy and collect its electrical
  // footprint: the nets whose local loads/drive changed and the couplings
  // whose value changed.
  std::vector<net::NetId> edit_nets;
  std::vector<layout::CapId> edit_caps;
  auto touch_cap = [&](layout::CapId cap) {
    TKA_CHECK(cap < par_own_->num_couplings(), "what_if: unknown coupling");
    const layout::CouplingCap& cc = par_own_->coupling(cap);
    edit_caps.push_back(cap);
    edit_nets.push_back(cc.net_a);
    edit_nets.push_back(cc.net_b);
  };
  for (layout::CapId cap : edit.zero_couplings) {
    touch_cap(cap);
    par_own_->zero_coupling(cap);
  }
  for (layout::CapId cap : edit.shield_couplings) {
    touch_cap(cap);
    par_own_->shield_coupling(cap);
  }
  for (const WhatIfEdit::Resize& rz : edit.resizes) {
    nl_own_->resize_gate(rz.gate, rz.cell_index);
    // The output net's drive and every input net's pin load can change.
    const net::Gate& g = nl_own_->gate(rz.gate);
    edit_nets.push_back(g.output);
    for (net::NetId in : g.inputs) edit_nets.push_back(in);
  }
  std::sort(edit_nets.begin(), edit_nets.end());
  edit_nets.erase(std::unique(edit_nets.begin(), edit_nets.end()),
                  edit_nets.end());
  std::sort(edit_caps.begin(), edit_caps.end());
  edit_caps.erase(std::unique(edit_caps.begin(), edit_caps.end()),
                  edit_caps.end());

  // Re-converge the baseline incrementally and collect the seed victims.
  std::vector<net::NetId> seeds;
  {
    obs::ScopedSpan stage_span("topk.stage.baseline");
    BaselineStage::refresh(design_, opt_, iter_opt_, edit_nets, edit_caps,
                           &base_, &seeds);
    if (opt_.mode == topk::Mode::kAddition && opt_.reevaluate) {
      // Addition evaluates candidate sets against the mask=none fixpoint;
      // keep a primed one warm for the re-ranking stage.
      const noise::CouplingMask none =
          noise::CouplingMask::none(design_.par->num_couplings());
      if (fp_none_ == nullptr) {
        fp_none_ = std::make_unique<noise::IncrementalFixpoint>(
            *design_.nl, *design_.par, *design_.model, *design_.calc,
            iter_opt_);
        fp_none_->recompute(none);
      } else {
        fp_none_->refresh(edit_nets, edit_caps, none);
      }
    }
  }

  log::info() << "session: what-if edit (" << edit_caps.size()
              << " couplings, " << edit.resizes.size() << " resizes) -> "
              << seeds.size() << " of " << design_.nl->num_nets()
              << " seed victims";
  return query(&seeds);
}

namespace {

/// Exact (bitwise) equality of a rebuilt candidate list against its
/// memoized predecessor — the trigger for change-driven dirtiness. Any
/// tolerance here would let a drifted value hide behind a stale memo and
/// break the bit-identity contract, so none is applied.
bool lists_equal(std::span<const topk::CandidateSet> a,
                 std::span<const topk::CandidateSet> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].score != b[i].score || a[i].members != b[i].members ||
        !a[i].envelope.same_points(b[i].envelope)) {
      return false;
    }
  }
  return true;
}

}  // namespace

double AnalysisSession::evaluate_members(
    std::span<const layout::CapId> members,
    const noise::IterativeOptions& iterative, bool warm) {
  const bool addition = (opt_.mode == topk::Mode::kAddition);
  if (warm) {
    const noise::IncrementalFixpoint* base_fp =
        addition ? fp_none_.get() : base_.fixpoint.get();
    if (base_fp != nullptr && base_fp->primed()) {
      // Clone the primed fixpoint and re-converge the clone under the
      // perturbed mask: bit-identical to the cold analyze_iterative call,
      // at a fraction of the iterations.
      noise::IncrementalFixpoint fp = *base_fp;
      fp.set_threads(iterative.threads);
      noise::CouplingMask mask =
          addition ? noise::CouplingMask::none(design_.par->num_couplings())
                   : noise::CouplingMask::all(design_.par->num_couplings());
      for (layout::CapId id : members) mask.set(id, addition);
      fp.refresh({}, members, mask);
      return fp.report().noisy_delay;
    }
  }
  return BaselineStage::masked_delay(design_, members, opt_.mode, iterative);
}

topk::TopkResult AnalysisSession::query(const std::vector<net::NetId>* seeds) {
  const topk::TopkOptions& opt = opt_;
  TKA_ASSERT(opt.k >= 1);
  // All run timing below comes from the obs monotonic clock so TopkStats,
  // span durations and registry values agree with each other.
  const std::int64_t run_start_ns = obs::now_ns();
  const int threads = threads_;
  const noise::IterativeOptions& iter_opt = iter_opt_;
  const bool cold = (seeds == nullptr);
  obs::ScopedSpan run_span(cold ? "topk.run" : "topk.whatif");
  run_span.arg("k", static_cast<std::int64_t>(opt.k))
      .arg("mode",
           opt.mode == topk::Mode::kAddition ? "addition" : "elimination")
      .arg("threads", static_cast<std::int64_t>(threads));

  // Per-query metric handles, hoisted out of the hot loops. TopkStats
  // counter fields are populated from registry deltas at the end (and
  // therefore read 0 when observability is compiled out).
  obs::MetricsRegistry& reg = obs::registry();
  obs::Counter& c_sets = reg.counter("topk.sets_generated");
  obs::Counter& c_dominance = reg.counter("topk.dominance_pruned");
  obs::Counter& c_beam = reg.counter("topk.beam_capped");
  obs::Counter& c_gen_cap = reg.counter("topk.generation_capped");
  obs::Counter& c_surviving = reg.counter("topk.surviving_sets");
  obs::Counter& c_sweep_graphs = reg.counter("topk.sweep_graph_runs");
  obs::Histogram& h_ilist = reg.histogram("topk.ilist_size", 1.0, 65536.0);
  reg.counter(cold ? "topk.runs" : "topk.whatif_runs").add(1);
  const std::uint64_t sets_before = c_sets.value();
#if TKA_OBS_ENABLED
  // Query-scoped runtime attribution: lane deltas over this query feed the
  // runtime.query.* gauges at the end. Batch widths go to a histogram so
  // chunk-grain imbalance is visible per query.
  const std::vector<runtime::LaneCounters> lanes_before =
      runtime::lane_snapshot();
  obs::Histogram& h_batch =
      reg.histogram("runtime.level_batch_nets", 1.0, 1048576.0);
#endif

  topk::TopkResult result;
  result.mode = opt.mode;

  const net::Netlist& nl = *design_.nl;
  const std::size_t num_nets = nl.num_nets();
  const std::size_t num_caps = design_.par->num_couplings();
  const std::size_t k = static_cast<std::size_t>(opt.k);
  const bool addition = (opt.mode == topk::Mode::kAddition);

  if (cold) {
    log::info() << "topk: start k=" << opt.k << " mode="
                << (addition ? "addition" : "elimination")
                << " nets=" << num_nets << " couplings=" << num_caps;
    base_ = topk::stages::BaselineState{};
    {
      obs::ScopedSpan stage_span("topk.stage.baseline");
      BaselineStage::prime(design_, opt, iter_opt, &base_);
    }
    memo_ = topk::stages::SweepMemo{};
    memo_.k = k;
    memo_.retain = sopt_.retain_candidates;
    memo_.lists.resize(k);
    if (memo_.retain && !addition) memo_.sweep0.resize(k);
    memo_.winner_score.assign(num_nets, std::vector<double>(k + 1, -1.0));
    memo_.winner_members.assign(
        num_nets, std::vector<std::vector<layout::CapId>>(k + 1));
    wavefront_ = std::make_unique<runtime::Wavefront>(nl);
    sweep_graph_ =
        build_sweep_graph(nl, *design_.par, base_, addition, *wavefront_);
    fp_none_.reset();
  } else {
    TKA_CHECK(memo_.k == k, "what_if must reuse the priming run's k");
  }

  result.all_aggressor_report = base_.fixpoint->report();
  const noise::NoiseReport& all_rep = result.all_aggressor_report;
  if (addition) {
    result.baseline_delay = all_rep.noiseless_delay;
    result.reference_delay = all_rep.noisy_delay;
  } else {
    result.baseline_delay = all_rep.noisy_delay;
    result.reference_delay = all_rep.noiseless_delay;
  }

  std::vector<BestSnap> ho_snap(addition ? 0 : num_nets);
  // Cold elimination sweeps double-buffer the snapshots (QueryContext::
  // ho_of): the task graph publishes into ho_snap (current sweep) and
  // readers of same-or-higher-level partners see ho_prev, swapped in at
  // each sweep boundary. Warm queries keep the single-array level-loop
  // semantics and leave ho_prev unset.
  std::vector<BestSnap> ho_prev(cold && !addition ? num_nets : 0);

  // Change-driven dirtiness (warm queries). `need` marks victims whose
  // enumeration inputs may have moved; it is seeded from the baseline
  // refresh and grows while the sweep runs, sticky across cardinalities
  // (cross-cardinality reads — own prior layer, fanin winner trails —
  // mean a victim stays interesting once any input ever changed this
  // query). `rebuilt` flags, per cardinality, the victims re-enumerated
  // at sweep 0: exactly what sets_of / publish need to pick between the
  // live list and the memoized sweep-0 snapshot. `changed_any` ensures
  // each net's readers are dirtied at most once per query.
  std::vector<char> need;
  std::vector<char> changed_any;
  std::vector<char> rebuilt;
  std::vector<std::vector<topk::CandidateSet>> prev_final;
  if (!cold) {
    need.assign(num_nets, 0);
    for (net::NetId v : *seeds) need[v] = 1;
    changed_any.assign(num_nets, 0);
    rebuilt.assign(num_nets, 0);
    prev_final.resize(num_nets);
  }
  // A net whose rebuilt list actually differs from its memoized one dirties
  // its one-hop readers: fanout gate outputs (pseudo propagation, balanced
  // unions) and live coupled partners (higher-order atoms, primary
  // envelopes). No transitive closure — if the reader's own list then
  // comes out unchanged, the wave stops there.
  auto mark_changed = [&](net::NetId v) {
    if (changed_any[v]) return;
    changed_any[v] = 1;
    need[v] = 1;
    for (const net::PinRef& pin : nl.net(v).fanouts) {
      need[nl.gate(pin.gate).output] = 1;
    }
    for (layout::CapId cap : design_.par->couplings_of(v)) {
      if (design_.par->coupling(cap).cap_pf <= 0.0) continue;
      need[design_.par->coupling(cap).other(v)] = 1;
    }
  };

  QueryContext ctx;
  ctx.design = design_;
  ctx.opt = &opt;
  ctx.iter_opt = iter_opt;
  ctx.threads = threads;
  ctx.k = k;
  ctx.addition = addition;
  ctx.base = &base_;
  ctx.memo = &memo_;
  ctx.dirty = cold ? nullptr : &rebuilt;
  ctx.ho_snap = &ho_snap;
  if (cold && !addition) {
    ctx.ho_prev = &ho_prev;
    ctx.levels = wavefront_->level_map();
  }
  ctx.result = &result;
  const bool warm_eval = !cold && sopt_.retain_candidates;
  ctx.evaluate = [this, warm_eval](std::span<const layout::CapId> members,
                                   const noise::IterativeOptions& iterative) {
    return evaluate_members(members, iterative, warm_eval);
  };
  ctx.c_sets = &c_sets;
  ctx.c_gen_cap = &c_gen_cap;
  ctx.c_surviving = &c_surviving;
  ctx.h_ilist = &h_ilist;

  EvaluateStage evaluate(&ctx);

  std::vector<net::NetId> batch_store;  // warm: the level's needy victims
  std::size_t work_victims = 0;         // warm: total re-enumerations

  // Elimination needs a second sweep per cardinality: its indirect
  // (window-narrowing) atoms reference the aggressor net's *current*-
  // cardinality winner, which only exists after the first sweep when the
  // aggressor follows the victim in the level order. Lists deduplicate, so
  // the second sweep is a pure refinement.
  const int sweeps = addition ? 1 : 2;
  for (std::size_t i = 1; i <= k; ++i) {
    const std::int64_t card_start_ns = obs::now_ns();
    obs::ScopedSpan card_span(str::format("topk.cardinality.%zu", i));
    if (memo_.lists[i - 1].size() != num_nets) {
      memo_.lists[i - 1].assign(num_nets, {});
    }
    if (memo_.retain && !addition && memo_.sweep0[i - 1].size() != num_nets) {
      memo_.sweep0[i - 1].assign(num_nets, {});
    }
    for (BestSnap& s : ho_snap) s.valid = false;
    for (BestSnap& s : ho_prev) s.valid = false;
    if (!cold) rebuilt.assign(num_nets, 0);

    // Cold sweeps run on the dependency-counted task graph: each victim is
    // one task (generate + reduce + publish fused), released the moment its
    // fanins — and, in elimination, its lower-level coupled partners — have
    // completed, so independent subtrees overlap across levels instead of
    // barrier-syncing each one. Every write lands in the victim's own slot
    // and all reductions run below on the calling thread in net-id order
    // (sums and maxes, order-independent besides), so the result is
    // bit-identical for every thread count and to the level loop
    // (docs/SCHEDULER.md has the full determinism argument).
    //
    // Warm queries keep the level loop: their change-driven `need` flags
    // legitimately grow *during* the sweep and are read at level-processing
    // time, a scheduling-order dependence the task graph has no edges for.
    for (int sweep = 0; sweep < sweeps; ++sweep) {
      if (cold) {
        obs::ScopedSpan sweep_span("topk.stage.sweep_graph");
        c_sweep_graphs.add(1);
        std::vector<topk::PruneStats> net_prune(num_nets);
        std::vector<std::size_t> net_max(num_nets, 0);
        sweep_graph_->run(threads, [&](std::size_t t) {
          const net::NetId v = static_cast<net::NetId>(t);
          CandidateStage::generate(ctx, v, i, sweep);
          PruneStage::reduce(ctx, v, i, &net_prune[t], &net_max[t]);
          if (!addition) PruneStage::publish_one(ctx, v, i, sweep);
        });
        for (std::size_t t = 0; t < num_nets; ++t) {
          result.stats.prune.considered += net_prune[t].considered;
          result.stats.prune.removed_dominated +=
              net_prune[t].removed_dominated;
          result.stats.prune.removed_beam += net_prune[t].removed_beam;
          result.stats.max_list_size =
              std::max(result.stats.max_list_size, net_max[t]);
        }
        // The finished sweep becomes the "previous" buffer the next sweep's
        // same-or-higher-level higher-order reads see (ho_of).
        if (!addition) ho_snap.swap(ho_prev);
        continue;
      }
      for (std::size_t lvl = 0; lvl < wavefront_->num_levels(); ++lvl) {
        const std::span<const net::NetId> full = wavefront_->level(lvl);
        std::span<const net::NetId> batch = full;
        if (!cold) {
          // The batch is filtered at level time: need flags set by earlier
          // levels of this very sweep are already visible here.
          runtime::filter_level(*wavefront_, lvl, need, &batch_store);
          batch = batch_store;
          work_victims += batch.size();
          for (net::NetId v : batch) {
            topk::IList& live = memo_.lists[i - 1][v];
            if (sweep == 0) {
              // Keep the memoized final list for the post-sweep compare;
              // generate is about to clear and rebuild it.
              prev_final[v].assign(live.sets().begin(), live.sets().end());
              rebuilt[v] = 1;
            } else if (!rebuilt[v]) {
              // Dirtied mid-cardinality by a later-level change: its own
              // sweep-0 inputs were clean, so the memoized sweep-0 snapshot
              // is exactly the list a cold run would enter sweep 1 with.
              prev_final[v].assign(live.sets().begin(), live.sets().end());
              live.clear();
              for (const topk::CandidateSet& s : memo_.sweep0[i - 1][v]) {
                live.try_add(s);
              }
            }
          }
        }
        if (!batch.empty()) {
#if TKA_OBS_ENABLED
          h_batch.observe(static_cast<double>(batch.size()));
#endif
          {
            obs::ScopedSpan gen_span("topk.stage.candidate");
            runtime::parallel_for(threads, 0, batch.size(), [&](std::size_t bi) {
              CandidateStage::generate(ctx, batch[bi], i, sweep);
            });
          }
          std::vector<topk::PruneStats> batch_prune(batch.size());
          std::vector<std::size_t> batch_max(batch.size(), 0);
          {
            obs::ScopedSpan prune_span("topk.stage.prune");
            runtime::parallel_for(threads, 0, batch.size(), [&](std::size_t bi) {
              PruneStage::reduce(ctx, batch[bi], i, &batch_prune[bi],
                                 &batch_max[bi]);
            });
          }
          // Deterministic reductions on the calling thread, in index order.
          for (std::size_t bi = 0; bi < batch.size(); ++bi) {
            result.stats.prune.considered += batch_prune[bi].considered;
            result.stats.prune.removed_dominated +=
                batch_prune[bi].removed_dominated;
            result.stats.prune.removed_beam += batch_prune[bi].removed_beam;
            result.stats.max_list_size =
                std::max(result.stats.max_list_size, batch_max[bi]);
          }
          if (!cold) {
            // Compare each rebuilt list against what this query would have
            // read had the victim stayed clean — the final sweep against
            // the memoized final list, elimination sweep 0 against the old
            // sweep-0 snapshot (publish overwrites it right below).
            const bool final_sweep = (sweep == sweeps - 1);
            for (net::NetId v : batch) {
              const std::span<const topk::CandidateSet> live =
                  memo_.lists[i - 1][v].sets();
              const std::vector<topk::CandidateSet>& prev =
                  final_sweep ? prev_final[v] : memo_.sweep0[i - 1][v];
              if (!lists_equal(live, prev)) mark_changed(v);
            }
          }
        }
        if (!addition) PruneStage::publish(ctx, full, i, sweep);
      }
    }

    {
      obs::ScopedSpan eval_span("topk.stage.evaluate");
      evaluate.select(i);
    }
    const std::int64_t now = obs::now_ns();
    result.stats.runtime_by_k.push_back(obs::ns_to_seconds(now - run_start_ns));
    reg.gauge(str::format("topk.cardinality_runtime_s.k%zu", i))
        .set(obs::ns_to_seconds(now - card_start_ns));
    if (log::enabled(log::Level::kDebug)) {
      log::debug() << "topk: cardinality " << i << " done in "
                   << obs::ns_to_seconds(now - card_start_ns)
                   << " s, best delay " << result.estimated_delay_by_k.back();
    }
    // Rolling memory for one-shot runs: cardinality i-1's layer is dead
    // once cardinality i completed (cardinality i+1 reads only layer i, the
    // re-ranking only layer k).
    if (!memo_.retain && i >= 2) {
      memo_.lists[i - 2].clear();
      memo_.lists[i - 2].shrink_to_fit();
    }
  }

  result.members = result.set_by_k.back();
  result.estimated_delay = result.estimated_delay_by_k.back();
  result.evaluated_delay = result.estimated_delay;
  {
    obs::ScopedSpan eval_span("topk.stage.evaluate");
    evaluate.finalize();
  }
  result.stats.threads = threads;
  result.stats.runtime_s = obs::ns_to_seconds(obs::now_ns() - run_start_ns);

  if (!cold) {
    std::size_t frontier = 0;
    for (char f : need) frontier += f != 0;
    reg.gauge("session.dirty_victims").set(static_cast<double>(frontier));
    log::info() << "session: what-if re-enumerated " << work_victims
                << " victim sweeps across " << frontier << " of " << num_nets
                << " nets";
  }

  // Publish the per-query prune tallies and fill the counter-derived stats
  // fields from the registry (zero when observability is compiled out).
  c_dominance.add(result.stats.prune.removed_dominated);
  c_beam.add(result.stats.prune.removed_beam);
  result.stats.sets_generated = c_sets.value() - sets_before;
  reg.gauge("topk.max_list_size")
      .set(static_cast<double>(result.stats.max_list_size));
  reg.gauge("topk.runtime_s").set(result.stats.runtime_s);

  // Waveform-pool hygiene: the query's transient waveforms are gone, so ask
  // every thread (lazily, at its next pool touch) to trim its free lists
  // back to a small warm set. Long-lived shard workers otherwise keep a
  // query-peak's worth of parked blocks forever. Long-lived waveforms
  // (envelope cache, memo snapshots) own their blocks and are unaffected.
  wave::pool::trim_all(kPoolKeepBytesPerThread);
  wave::pool::publish_gauges();

#if TKA_OBS_ENABLED
  // Memory accounting: walk the memoized state once per query and publish
  // the approximate footprints (mem.candidate_tables_bytes for the live
  // I-list layers, mem.whatif_memo_bytes for the replay snapshots and
  // winner trails).
  {
    std::size_t table_bytes = 0;
    for (const std::vector<topk::IList>& layer : memo_.lists) {
      for (const topk::IList& list : layer) table_bytes += list.approx_bytes();
    }
    std::size_t memo_bytes = 0;
    for (const auto& layer : memo_.sweep0) {
      for (const std::vector<topk::CandidateSet>& snap : layer) {
        memo_bytes += snap.capacity() * sizeof(topk::CandidateSet);
        for (const topk::CandidateSet& s : snap) {
          memo_bytes += s.members.capacity() * sizeof(layout::CapId);
          memo_bytes += s.envelope.heap_bytes();
        }
      }
    }
    for (const std::vector<double>& w : memo_.winner_score) {
      memo_bytes += w.capacity() * sizeof(double);
    }
    for (const auto& trails : memo_.winner_members) {
      memo_bytes += trails.capacity() * sizeof(std::vector<layout::CapId>);
      for (const std::vector<layout::CapId>& t : trails) {
        memo_bytes += t.capacity() * sizeof(layout::CapId);
      }
    }
    candidate_bytes_.set(static_cast<std::int64_t>(table_bytes));
    memo_bytes_.set(static_cast<std::int64_t>(memo_bytes));
  }
  // Runtime attribution over just this query.
  {
    const std::vector<runtime::LaneCounters> query_lanes =
        runtime::lane_delta(lanes_before, runtime::lane_snapshot());
    std::uint64_t exec = 0, cpu = 0, idle = 0, barrier = 0;
    for (const runtime::LaneCounters& l : query_lanes) {
      exec += l.exec_ns;
      cpu += l.exec_cpu_ns;
      idle += l.queue_idle_ns;
      barrier += l.barrier_wait_ns;
    }
    reg.gauge("runtime.query.exec_s")
        .set(obs::ns_to_seconds(static_cast<std::int64_t>(exec)));
    reg.gauge("runtime.query.exec_cpu_s")
        .set(obs::ns_to_seconds(static_cast<std::int64_t>(cpu)));
    reg.gauge("runtime.query.queue_idle_s")
        .set(obs::ns_to_seconds(static_cast<std::int64_t>(idle)));
    reg.gauge("runtime.query.barrier_wait_s")
        .set(obs::ns_to_seconds(static_cast<std::int64_t>(barrier)));
    reg.gauge("runtime.query.wall_s").set(result.stats.runtime_s);
  }
#endif

  log::info() << "topk: done in " << result.stats.runtime_s << " s, "
              << result.stats.sets_generated << " sets generated, "
              << result.stats.prune.removed_dominated << " dominance-pruned, "
              << result.stats.prune.removed_beam << " beam-capped, delay "
              << result.baseline_delay << " -> " << result.evaluated_delay;
  return result;
}

}  // namespace tka::session
