#include "circuit/nonlinear.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/error.hpp"

namespace tka::circuit {

SquareLawDevice::SquareLawDevice(double k, double vov) : k_(k), vov_(vov) {
  TKA_ASSERT(k > 0.0);
  TKA_ASSERT(vov > 0.0);
}

SquareLawDevice SquareLawDevice::from_resistance(double r_kohm, double vov) {
  TKA_ASSERT(r_kohm > 0.0);
  // Small-signal conductance at v=0: dI/dv = k*vov = 1/R.
  return SquareLawDevice(1.0 / (r_kohm * vov), vov);
}

double SquareLawDevice::current(double v) const {
  if (v < 0.0) return k_ * vov_ * v;
  if (v >= vov_) return 0.5 * k_ * vov_ * vov_ + kGmin * (v - vov_);
  return k_ * (vov_ * v - 0.5 * v * v);
}

double SquareLawDevice::conductance(double v) const {
  if (v < 0.0) return k_ * vov_;
  if (v >= vov_) return kGmin;
  return std::max(k_ * (vov_ - v), kGmin);
}

TransientResult simulate_nonlinear(const LinearCircuit& circuit,
                                   const std::vector<AttachedDevice>& devices,
                                   const NonlinearOptions& opt) {
  const TransientOptions& tr = opt.transient;
  TKA_ASSERT(tr.step > 0.0);
  TKA_ASSERT(tr.t_end > tr.t_start);
  const size_t n = circuit.unknown_count();
  const size_t nodes = circuit.node_count();
  const double h = tr.step;

  const Matrix g = circuit.build_g();
  const Matrix c = circuit.build_c();

  // Row index of each device node (ground is eliminated; node ids are
  // 1-based so row = node - 1).
  std::vector<size_t> dev_row(devices.size());
  for (size_t d = 0; d < devices.size(); ++d) {
    TKA_ASSERT(devices[d].node >= 1 &&
               static_cast<size_t>(devices[d].node) <= nodes);
    dev_row[d] = static_cast<size_t>(devices[d].node) - 1;
  }

  // DC operating point with Newton: G x + i_nl(x) = b(t0).
  std::vector<double> x(n, 0.0);
  const std::vector<double> b0 = circuit.build_rhs(tr.t_start);
  for (int it = 0;; ++it) {
    if (it >= opt.max_newton) throw Error("simulate_nonlinear: DC Newton diverged");
    // Residual F = G x + i_nl - b; Jacobian J = G + diag(g_nl).
    std::vector<double> f = g.multiply(x);
    Matrix j = g;
    for (size_t d = 0; d < devices.size(); ++d) {
      const double v = x[dev_row[d]];
      f[dev_row[d]] += devices[d].device.current(v);
      j.at(dev_row[d], dev_row[d]) += devices[d].device.conductance(v);
    }
    double worst = 0.0;
    for (size_t i = 0; i < n; ++i) {
      f[i] -= b0[i];
      worst = std::max(worst, std::abs(f[i]));
    }
    const std::vector<double> dx = LuSolver(j).solve(f);
    double step_norm = 0.0;
    for (size_t i = 0; i < n; ++i) {
      x[i] -= dx[i];
      step_norm = std::max(step_norm, std::abs(dx[i]));
    }
    if (step_norm < opt.newton_tol_v) break;
  }

  const Matrix a_lin = c.scaled(1.0 / h).plus(g.scaled(0.5));
  const Matrix rhs_m = c.scaled(1.0 / h).plus(g.scaled(-0.5));

  const size_t steps =
      static_cast<size_t>(std::ceil((tr.t_end - tr.t_start) / h));
  std::vector<double> times;
  times.reserve(steps + 1);
  std::vector<std::vector<double>> volts(nodes);
  for (auto& trace : volts) trace.reserve(steps + 1);
  auto record = [&](double t, const std::vector<double>& state) {
    times.push_back(t);
    for (size_t i = 0; i < nodes; ++i) volts[i].push_back(state[i]);
  };

  record(tr.t_start, x);
  std::vector<double> b_prev = b0;
  for (size_t s = 0; s < steps; ++s) {
    const double t_next = tr.t_start + h * static_cast<double>(s + 1);
    const std::vector<double> b_next = circuit.build_rhs(t_next);

    // Trapezoidal with nonlinear term:
    //   A x1 + 0.5 i(x1) = rhs_m x0 - 0.5 i(x0) + (b0 + b1)/2
    std::vector<double> rhs = rhs_m.multiply(x);
    for (size_t i = 0; i < n; ++i) rhs[i] += 0.5 * (b_prev[i] + b_next[i]);
    for (size_t d = 0; d < devices.size(); ++d) {
      rhs[dev_row[d]] -= 0.5 * devices[d].device.current(x[dev_row[d]]);
    }

    std::vector<double> x1 = x;  // warm start
    for (int it = 0;; ++it) {
      if (it >= opt.max_newton) {
        throw Error("simulate_nonlinear: Newton diverged at t=" +
                    std::to_string(t_next));
      }
      std::vector<double> f = a_lin.multiply(x1);
      Matrix j = a_lin;
      for (size_t d = 0; d < devices.size(); ++d) {
        const double v = x1[dev_row[d]];
        f[dev_row[d]] += 0.5 * devices[d].device.current(v);
        j.at(dev_row[d], dev_row[d]) += 0.5 * devices[d].device.conductance(v);
      }
      double step_norm = 0.0;
      const std::vector<double> dx = [&] {
        for (size_t i = 0; i < n; ++i) f[i] -= rhs[i];
        return LuSolver(j).solve(f);
      }();
      for (size_t i = 0; i < n; ++i) {
        x1[i] -= dx[i];
        step_norm = std::max(step_norm, std::abs(dx[i]));
      }
      if (step_norm < opt.newton_tol_v) break;
    }
    x = std::move(x1);
    record(t_next, x);
    b_prev = b_next;
  }
  return TransientResult(std::move(times), std::move(volts));
}

}  // namespace tka::circuit
