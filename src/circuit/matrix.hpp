// Dense linear algebra for the MNA solver. Circuit templates in this
// library are tiny (a handful of nodes), so a dense LU with partial
// pivoting is simpler and faster than any sparse machinery.
#pragma once

#include <cstddef>

#include <vector>

namespace tka::circuit {

/// Dense row-major square-capable matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// this * v (matrix-vector product); v.size() must equal cols().
  std::vector<double> multiply(const std::vector<double>& v) const;

  /// this + other, elementwise; dimensions must match.
  Matrix plus(const Matrix& other) const;

  /// this scaled by a.
  Matrix scaled(double a) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting of a square matrix; reusable for
/// many right-hand sides (the transient loop factors once per time step
/// size and solves per step).
class LuSolver {
 public:
  /// Factors `m` (must be square and non-singular; throws tka::Error if a
  /// pivot collapses below tolerance).
  explicit LuSolver(const Matrix& m);

  /// Solves A x = b for the factored A.
  std::vector<double> solve(const std::vector<double>& b) const;

  size_t size() const { return n_; }

 private:
  size_t n_ = 0;
  std::vector<double> lu_;    // packed LU factors, row-major
  std::vector<size_t> perm_;  // row permutation
};

}  // namespace tka::circuit
