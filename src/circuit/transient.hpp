// Fixed-step trapezoidal transient simulation of a LinearCircuit.
//
// Trapezoidal integration of C x' + G x = b(t):
//   (C/h + G/2) x_{n+1} = (C/h - G/2) x_n + (b_n + b_{n+1}) / 2
// The left-hand matrix is factored once per run (fixed h), so each step is
// a pair of triangular solves. A-stable, second order — the standard choice
// in circuit simulators.
#pragma once

#include "circuit/mna.hpp"
#include "wave/pwl.hpp"

namespace tka::circuit {

/// Simulation controls.
struct TransientOptions {
  double t_start = 0.0;  ///< ns
  double t_end = 10.0;   ///< ns
  double step = 0.01;    ///< ns; must divide the interval reasonably
};

/// Result: time samples plus per-node voltage samples.
class TransientResult {
 public:
  TransientResult(std::vector<double> times, std::vector<std::vector<double>> node_volts)
      : times_(std::move(times)), node_volts_(std::move(node_volts)) {}

  const std::vector<double>& times() const { return times_; }

  /// Sampled voltage trace of `node` (1-based; ground not stored).
  const std::vector<double>& voltages(NodeId node) const;

  /// Trace converted to a PWL waveform.
  wave::Pwl waveform(NodeId node) const;

 private:
  std::vector<double> times_;
  std::vector<std::vector<double>> node_volts_;  // [node-1][sample]
};

/// Runs the transient. DC operating point at t_start (G x = b) seeds the
/// state. Throws tka::Error on a singular system.
TransientResult simulate(const LinearCircuit& circuit, const TransientOptions& options);

}  // namespace tka::circuit
