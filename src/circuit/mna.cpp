#include "circuit/mna.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace tka::circuit {

NodeId LinearCircuit::add_node(std::string name) {
  names_.push_back(name.empty() ? "n" + std::to_string(names_.size() + 1)
                                : std::move(name));
  return static_cast<NodeId>(names_.size());
}

void LinearCircuit::add_resistor(NodeId a, NodeId b, double kohm) {
  TKA_ASSERT(kohm > 0.0);
  TKA_ASSERT(a >= 0 && static_cast<size_t>(a) <= node_count());
  TKA_ASSERT(b >= 0 && static_cast<size_t>(b) <= node_count());
  TKA_ASSERT(a != b);
  resistors_.push_back({a, b, kohm});
}

void LinearCircuit::add_capacitor(NodeId a, NodeId b, double pf) {
  TKA_ASSERT(pf > 0.0);
  TKA_ASSERT(a >= 0 && static_cast<size_t>(a) <= node_count());
  TKA_ASSERT(b >= 0 && static_cast<size_t>(b) <= node_count());
  TKA_ASSERT(a != b);
  capacitors_.push_back({a, b, pf});
}

void LinearCircuit::add_vsource(NodeId node, wave::Pwl waveform) {
  TKA_ASSERT(node >= 1 && static_cast<size_t>(node) <= node_count());
  sources_.push_back({node, std::move(waveform)});
}

Matrix LinearCircuit::build_g() const {
  const size_t n = unknown_count();
  Matrix g(n, n);
  for (const TwoTerminal& r : resistors_) {
    const double cond = 1.0 / r.value;  // 1/kOhm = mS; consistent units
    const int ra = row_of(r.a);
    const int rb = row_of(r.b);
    if (ra >= 0) g.at(ra, ra) += cond;
    if (rb >= 0) g.at(rb, rb) += cond;
    if (ra >= 0 && rb >= 0) {
      g.at(ra, rb) -= cond;
      g.at(rb, ra) -= cond;
    }
  }
  // Voltage-source incidence rows/columns.
  for (size_t s = 0; s < sources_.size(); ++s) {
    const int node_row = row_of(sources_[s].node);
    const size_t src_row = node_count() + s;
    TKA_ASSERT(node_row >= 0);
    g.at(static_cast<size_t>(node_row), src_row) += 1.0;  // current into node
    g.at(src_row, static_cast<size_t>(node_row)) += 1.0;  // v_node = b
  }
  return g;
}

Matrix LinearCircuit::build_c() const {
  const size_t n = unknown_count();
  Matrix c(n, n);
  for (const TwoTerminal& cap : capacitors_) {
    const int ra = row_of(cap.a);
    const int rb = row_of(cap.b);
    const double v = cap.value;  // pF; with kOhm and ns, tau = R*C in ns
    if (ra >= 0) c.at(ra, ra) += v;
    if (rb >= 0) c.at(rb, rb) += v;
    if (ra >= 0 && rb >= 0) {
      c.at(ra, rb) -= v;
      c.at(rb, ra) -= v;
    }
  }
  return c;
}

std::vector<double> LinearCircuit::build_rhs(double t) const {
  std::vector<double> b(unknown_count(), 0.0);
  for (size_t s = 0; s < sources_.size(); ++s) {
    b[node_count() + s] = sources_[s].waveform.value(t);
  }
  return b;
}

std::vector<double> LinearCircuit::source_breakpoints() const {
  std::vector<double> times;
  for (const Source& s : sources_) {
    for (const wave::Point& p : s.waveform.points()) times.push_back(p.t);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

}  // namespace tka::circuit
