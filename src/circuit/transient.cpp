#include "circuit/transient.hpp"

#include <cmath>

#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace tka::circuit {

const std::vector<double>& TransientResult::voltages(NodeId node) const {
  TKA_ASSERT(node >= 1 && static_cast<size_t>(node) <= node_volts_.size());
  return node_volts_[static_cast<size_t>(node) - 1];
}

wave::Pwl TransientResult::waveform(NodeId node) const {
  const std::vector<double>& v = voltages(node);
  std::vector<wave::Point> pts;
  pts.reserve(times_.size());
  for (size_t i = 0; i < times_.size(); ++i) pts.push_back({times_[i], v[i]});
  return wave::Pwl(std::move(pts));
}

TransientResult simulate(const LinearCircuit& circuit, const TransientOptions& options) {
  TKA_ASSERT(options.step > 0.0);
  TKA_ASSERT(options.t_end > options.t_start);
  obs::ScopedSpan span("transient.solve");
  if (span.recording()) {
    span.arg("nodes", static_cast<std::int64_t>(circuit.node_count()))
        .arg("step_ns", options.step);
  }
  static obs::Counter& c_solves = obs::registry().counter("transient.solves");
  static obs::Histogram& h_seconds =
      obs::registry().histogram("transient.solve_seconds", 1e-6, 100.0);
  obs::ScopedHistogramTimer timer(h_seconds);
  c_solves.add(1);
  const size_t n = circuit.unknown_count();
  const size_t nodes = circuit.node_count();
  const double h = options.step;

  const Matrix g = circuit.build_g();
  const Matrix c = circuit.build_c();

  // DC operating point: G x = b(t_start).
  const LuSolver dc(g);
  std::vector<double> x = dc.solve(circuit.build_rhs(options.t_start));

  // Trapezoidal system matrices.
  const Matrix lhs = c.scaled(1.0 / h).plus(g.scaled(0.5));
  const Matrix rhs_m = c.scaled(1.0 / h).plus(g.scaled(-0.5));
  const LuSolver lu(lhs);

  const size_t steps = static_cast<size_t>(std::ceil((options.t_end - options.t_start) / h));
  std::vector<double> times;
  times.reserve(steps + 1);
  std::vector<std::vector<double>> volts(nodes);
  for (auto& trace : volts) trace.reserve(steps + 1);

  auto record = [&](double t, const std::vector<double>& state) {
    times.push_back(t);
    for (size_t i = 0; i < nodes; ++i) volts[i].push_back(state[i]);
  };

  double t = options.t_start;
  record(t, x);
  std::vector<double> b_prev = circuit.build_rhs(t);
  for (size_t s = 0; s < steps; ++s) {
    const double t_next = options.t_start + h * static_cast<double>(s + 1);
    std::vector<double> b_next = circuit.build_rhs(t_next);
    std::vector<double> rhs = rhs_m.multiply(x);
    for (size_t i = 0; i < n; ++i) rhs[i] += 0.5 * (b_prev[i] + b_next[i]);
    x = lu.solve(rhs);
    record(t_next, x);
    b_prev = std::move(b_next);
    t = t_next;
  }
  return TransientResult(std::move(times), std::move(volts));
}

}  // namespace tka::circuit
