// Modified nodal analysis (MNA) formulation of a linear RC circuit with
// PWL-driven ideal voltage sources: C x' + G x = b(t).
//
// Unknowns are node voltages (ground is node 0 and is eliminated) followed
// by one branch current per ideal voltage source. Units: kOhm, pF, ns, V —
// chosen so that R*C lands directly in ns and conductances stay O(1).
#pragma once

#include <cstddef>

#include <string>
#include <vector>

#include "circuit/matrix.hpp"
#include "wave/pwl.hpp"

namespace tka::circuit {

/// Node handle; 0 is ground.
using NodeId = int;

/// Linear RC circuit under construction. Elements may be added in any
/// order; `build()`-style assembly happens lazily inside the simulator.
class LinearCircuit {
 public:
  /// Creates a fresh node and returns its id (>= 1).
  NodeId add_node(std::string name = {});

  /// Resistor of `kohm` kilo-ohms between a and b (either may be ground).
  void add_resistor(NodeId a, NodeId b, double kohm);

  /// Capacitor of `pf` picofarads between a and b (either may be ground).
  void add_capacitor(NodeId a, NodeId b, double pf);

  /// Ideal voltage source from ground to `node`, driven by PWL `wave` (V).
  void add_vsource(NodeId node, wave::Pwl waveform);

  size_t node_count() const { return names_.size(); }
  size_t source_count() const { return sources_.size(); }
  const std::string& node_name(NodeId n) const { return names_[static_cast<size_t>(n) - 1]; }

  // --- Assembly (used by the transient engine) ---

  /// Number of MNA unknowns: nodes + source branch currents.
  size_t unknown_count() const { return node_count() + source_count(); }

  /// Conductance/incidence matrix G (unknown_count square).
  Matrix build_g() const;

  /// Capacitance matrix C (unknown_count square).
  Matrix build_c() const;

  /// Right-hand side b(t) at time t.
  std::vector<double> build_rhs(double t) const;

  /// All waveform breakpoint times of the sources (for step-size sanity).
  std::vector<double> source_breakpoints() const;

 private:
  struct TwoTerminal {
    NodeId a = 0;
    NodeId b = 0;
    double value = 0.0;
  };
  struct Source {
    NodeId node = 0;
    wave::Pwl waveform;
  };

  // Maps node id to MNA row (ground eliminated): node n -> n-1.
  static int row_of(NodeId n) { return n - 1; }

  std::vector<std::string> names_;
  std::vector<TwoTerminal> resistors_;
  std::vector<TwoTerminal> capacitors_;
  std::vector<Source> sources_;
};

}  // namespace tka::circuit
