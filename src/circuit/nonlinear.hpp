// Non-linear current-source driver models (the paper's stated future work;
// ref [9] "Blade and razor" style).
//
// The linear framework models the victim holder as a fixed resistance —
// its small-signal conductance. A real MOS holding device weakens as the
// glitch grows (triode current bends over, then saturates), so linear
// analysis is optimistic for large noise. This module adds a square-law
// device and a Newton-within-trapezoidal transient so the coupled-RC
// template can be characterized with a non-linear victim holder, and the
// gap to the linear model can be measured (bench/ablation_model).
//
//   triode   (0 <= v <= Vov): I(v) = k * (Vov*v - v^2/2)
//   saturation    (v >= Vov): I(v) = k * Vov^2 / 2           (+ g_min leak)
//   below ground     (v < 0): I(v) = k * Vov * v             (linearized)
#pragma once

#include "circuit/transient.hpp"

namespace tka::circuit {

/// Square-law holding device from node to ground, gate fully on.
class SquareLawDevice {
 public:
  /// `k` in mA/V^2, `vov` = Vgs - Vt in volts. The small-signal conductance
  /// at v=0 is k*vov (mS), i.e. R_smallsignal = 1/(k*vov) kOhm.
  SquareLawDevice(double k, double vov);

  /// Builds the device whose small-signal resistance matches `r_kohm`.
  static SquareLawDevice from_resistance(double r_kohm, double vov);

  /// Current out of the node into ground (mA).
  double current(double v) const;
  /// dI/dv (mS); floored at a small positive value for Newton robustness.
  double conductance(double v) const;

  double vov() const { return vov_; }

 private:
  double k_;
  double vov_;
  static constexpr double kGmin = 1e-4;  // mS
};

/// A nonlinear device attached to a circuit node.
struct AttachedDevice {
  NodeId node = 0;
  SquareLawDevice device;
};

/// Newton-iteration controls for the nonlinear transient.
struct NonlinearOptions {
  TransientOptions transient;
  double newton_tol_v = 1e-7;
  int max_newton = 40;
};

/// Trapezoidal transient of `circuit` with square-law devices attached;
/// Newton's method solves each time step. Throws tka::Error if Newton
/// fails to converge.
TransientResult simulate_nonlinear(const LinearCircuit& circuit,
                                   const std::vector<AttachedDevice>& devices,
                                   const NonlinearOptions& options);

}  // namespace tka::circuit
