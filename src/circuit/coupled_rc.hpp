// The Figure-2 coupled-RC characterization template.
//
// Aggressor driver (ideal ramp source behind Ra) drives the aggressor net,
// modeled as a pi-segment (C1a near, C2a far). A coupling cap Cc connects
// the far aggressor node to the far victim node. The victim driver holds
// the victim quiet through Rv; the victim net carries C1v near and C2v far.
// Simulating the aggressor ramp and observing the victim far node yields
// the coupled noise pulse, from which (peak, rise, tau) are extracted.
//
// The closed-form model in noise/coupling_calc.* approximates the same
// template; tests bound the gap between the two.
#pragma once

#include "circuit/transient.hpp"
#include "wave/pulse.hpp"
#include "wave/pwl.hpp"

namespace tka::circuit {

/// Electrical parameters of the coupling template (kOhm / pF / ns / V).
struct CoupledRcParams {
  double ra = 1.0;        ///< aggressor driver resistance (kOhm)
  double rv = 1.0;        ///< victim holding resistance (kOhm)
  double c1a = 0.01;      ///< aggressor near-end ground cap (pF)
  double c2a = 0.01;      ///< aggressor far-end ground cap (pF)
  double c1v = 0.01;      ///< victim near-end ground cap (pF)
  double c2v = 0.01;      ///< victim far-end ground cap (pF)
  double cc = 0.02;       ///< coupling cap (pF)
  double vdd = 1.2;       ///< supply (V)
  double agg_trans = 0.1; ///< aggressor 0-100% transition time (ns)
};

/// Full simulated victim-noise waveform for the template (aggressor ramp
/// starts at t = 0). `step` and `t_end` default to values resolving the
/// fastest time constant of typical parameters.
wave::Pwl simulate_noise_pulse(const CoupledRcParams& params,
                               double t_end = 0.0, double step = 0.0);

/// Characterized pulse shape extracted from the simulated waveform:
/// peak = max voltage; rise = time from aggressor ramp start to the peak;
/// tau = decay constant fit between the peak and its 1/e point.
wave::PulseShape characterize_noise_pulse(const CoupledRcParams& params);

/// Same template, but the victim holder is a square-law device whose
/// small-signal resistance equals params.rv (overdrive `vov`, typically
/// Vdd - Vt). Large glitches see a weakening holder, so the non-linear
/// peak exceeds the linear one — the accuracy gap the paper's future-work
/// section is about.
wave::Pwl simulate_noise_pulse_nonlinear(const CoupledRcParams& params,
                                         double vov, double t_end = 0.0,
                                         double step = 0.0);

/// Characterization of the non-linear template.
wave::PulseShape characterize_noise_pulse_nonlinear(const CoupledRcParams& params,
                                                    double vov);

}  // namespace tka::circuit
