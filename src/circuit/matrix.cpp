#include "circuit/matrix.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/error.hpp"

namespace tka::circuit {

std::vector<double> Matrix::multiply(const std::vector<double>& v) const {
  TKA_ASSERT(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += at(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::plus(const Matrix& other) const {
  TKA_ASSERT(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + other.data_[i];
  return out;
}

Matrix Matrix::scaled(double a) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * a;
  return out;
}

LuSolver::LuSolver(const Matrix& m) {
  TKA_ASSERT(m.rows() == m.cols());
  n_ = m.rows();
  lu_.resize(n_ * n_);
  perm_.resize(n_);
  for (size_t r = 0; r < n_; ++r) {
    perm_[r] = r;
    for (size_t c = 0; c < n_; ++c) lu_[r * n_ + c] = m.at(r, c);
  }
  constexpr double kPivotTol = 1e-14;
  for (size_t k = 0; k < n_; ++k) {
    // Partial pivoting: find the largest |entry| in column k at/below row k.
    size_t pivot = k;
    double best = std::abs(lu_[k * n_ + k]);
    for (size_t r = k + 1; r < n_; ++r) {
      const double cand = std::abs(lu_[r * n_ + k]);
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (best < kPivotTol) throw Error("LuSolver: singular MNA matrix");
    if (pivot != k) {
      for (size_t c = 0; c < n_; ++c) std::swap(lu_[k * n_ + c], lu_[pivot * n_ + c]);
      std::swap(perm_[k], perm_[pivot]);
    }
    const double inv = 1.0 / lu_[k * n_ + k];
    for (size_t r = k + 1; r < n_; ++r) {
      const double f = lu_[r * n_ + k] * inv;
      lu_[r * n_ + k] = f;
      for (size_t c = k + 1; c < n_; ++c) lu_[r * n_ + c] -= f * lu_[k * n_ + c];
    }
  }
}

std::vector<double> LuSolver::solve(const std::vector<double>& b) const {
  TKA_ASSERT(b.size() == n_);
  std::vector<double> x(n_);
  // Forward substitution with permutation.
  for (size_t r = 0; r < n_; ++r) {
    double acc = b[perm_[r]];
    for (size_t c = 0; c < r; ++c) acc -= lu_[r * n_ + c] * x[c];
    x[r] = acc;
  }
  // Back substitution.
  for (size_t ri = n_; ri-- > 0;) {
    double acc = x[ri];
    for (size_t c = ri + 1; c < n_; ++c) acc -= lu_[ri * n_ + c] * x[c];
    x[ri] = acc / lu_[ri * n_ + ri];
  }
  return x;
}

}  // namespace tka::circuit
