#include "circuit/coupled_rc.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/nonlinear.hpp"
#include "util/assert.hpp"
#include "wave/ramp.hpp"

namespace tka::circuit {
namespace {

// Slowest plausible time constant of the template; used for default span.
double dominant_tau(const CoupledRcParams& p) {
  const double r = std::max(p.ra, p.rv);
  const double c = p.c1a + p.c2a + p.c1v + p.c2v + p.cc;
  return r * c;
}

// Shared Figure-2 template builder. When `nonlinear_victim` is false the
// victim is held by Rv; otherwise the caller attaches a device at the
// returned victim-near node and no Rv resistor is added.
struct Template {
  LinearCircuit ckt;
  NodeId v_near = 0;
  NodeId v_far = 0;
};

Template build_template(const CoupledRcParams& p, bool nonlinear_victim) {
  Template t;
  LinearCircuit& ckt = t.ckt;
  const NodeId a_src = ckt.add_node("agg_src");
  const NodeId a_near = ckt.add_node("agg_near");
  const NodeId a_far = ckt.add_node("agg_far");
  t.v_near = ckt.add_node("vic_near");
  t.v_far = ckt.add_node("vic_far");

  const double wire_r_a = 0.1 * p.ra;
  ckt.add_vsource(a_src, wave::make_rising_ramp(0.5 * p.agg_trans, p.agg_trans, p.vdd));
  ckt.add_resistor(a_src, a_near, p.ra);
  ckt.add_resistor(a_near, a_far, wire_r_a);
  ckt.add_capacitor(a_near, 0, p.c1a);
  ckt.add_capacitor(a_far, 0, p.c2a);

  const double wire_r_v = 0.1 * p.rv;
  if (!nonlinear_victim) ckt.add_resistor(t.v_near, 0, p.rv);
  ckt.add_resistor(t.v_near, t.v_far, wire_r_v);
  ckt.add_capacitor(t.v_near, 0, p.c1v);
  ckt.add_capacitor(t.v_far, 0, p.c2v);

  ckt.add_capacitor(a_far, t.v_far, p.cc);
  return t;
}

wave::PulseShape shape_from_waveform(const wave::Pwl& pulse,
                                     const CoupledRcParams& p) {
  wave::PulseShape shape;
  shape.peak = pulse.peak();
  const double t_peak = pulse.peak_time();
  shape.rise = std::max(t_peak, 1e-4);
  const double target = shape.peak / std::exp(1.0);
  double t_decay = -1.0;
  for (const wave::Point& pt : pulse.points()) {
    if (pt.t <= t_peak) continue;
    if (pt.v <= target) {
      t_decay = pt.t;
      break;
    }
  }
  shape.tau = (t_decay > t_peak) ? t_decay - t_peak : dominant_tau(p);
  shape.tau = std::max(shape.tau, 1e-4);
  return shape;
}

}  // namespace

wave::Pwl simulate_noise_pulse(const CoupledRcParams& p, double t_end, double step) {
  TKA_ASSERT(p.ra > 0 && p.rv > 0 && p.cc > 0 && p.agg_trans > 0 && p.vdd > 0);
  const double tau = dominant_tau(p);
  if (t_end <= 0.0) t_end = p.agg_trans + 8.0 * tau;
  if (step <= 0.0) step = std::min(p.agg_trans, tau) / 50.0;

  Template t = build_template(p, /*nonlinear_victim=*/false);
  TransientOptions opt;
  opt.t_start = 0.0;
  opt.t_end = t_end;
  opt.step = step;
  const TransientResult result = simulate(t.ckt, opt);
  return result.waveform(t.v_far);
}

wave::PulseShape characterize_noise_pulse(const CoupledRcParams& p) {
  return shape_from_waveform(simulate_noise_pulse(p), p);
}

wave::Pwl simulate_noise_pulse_nonlinear(const CoupledRcParams& p, double vov,
                                         double t_end, double step) {
  TKA_ASSERT(p.ra > 0 && p.rv > 0 && p.cc > 0 && p.agg_trans > 0 && p.vdd > 0);
  TKA_ASSERT(vov > 0.0);
  const double tau = dominant_tau(p);
  if (t_end <= 0.0) t_end = p.agg_trans + 8.0 * tau;
  if (step <= 0.0) step = std::min(p.agg_trans, tau) / 50.0;

  Template t = build_template(p, /*nonlinear_victim=*/true);
  NonlinearOptions opt;
  opt.transient.t_start = 0.0;
  opt.transient.t_end = t_end;
  opt.transient.step = step;
  const std::vector<AttachedDevice> devices = {
      {t.v_near, SquareLawDevice::from_resistance(p.rv, vov)}};
  const TransientResult result = simulate_nonlinear(t.ckt, devices, opt);
  return result.waveform(t.v_far);
}

wave::PulseShape characterize_noise_pulse_nonlinear(const CoupledRcParams& p,
                                                    double vov) {
  return shape_from_waveform(simulate_noise_pulse_nonlinear(p, vov), p);
}

}  // namespace tka::circuit
