#include "topk/dominance.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace tka::topk {

void prune_dominated(std::vector<CandidateSet>& list,
                     const wave::DominanceInterval& interval, double tol,
                     PruneStats* stats) {
  if (stats != nullptr) stats->considered += list.size();
  if (list.size() < 2 || !interval.valid()) return;

  static obs::Counter& c_sig_rejects =
      obs::registry().counter("dominance.sig_rejects");
  static obs::Counter& c_exact_checks =
      obs::registry().counter("dominance.exact_checks");

  // Backfill signatures for candidates built outside the engine pipeline
  // (or against a different interval); the pre-filter below needs every
  // signature to describe exactly this interval.
  for (CandidateSet& s : list) {
    if (!wave::signature_matches(s.sig, interval)) {
      s.sig = wave::make_signature(s.envelope, interval);
    }
  }

  // Sort by score descending first: a set can only be dominated by one with
  // an equal-or-larger delay-noise score (its envelope is pointwise >= over
  // the interval that determines the score), so each set needs comparing
  // only against the survivors ahead of it.
  std::sort(list.begin(), list.end(),
            [](const CandidateSet& a, const CandidateSet& b) { return a.score > b.score; });

  std::uint64_t sig_rejects = 0;
  std::uint64_t exact_checks = 0;
  std::vector<CandidateSet> kept;
  kept.reserve(list.size());
  for (CandidateSet& cand : list) {
    bool dominated = false;
    for (const CandidateSet& winner : kept) {
      // Signature pre-filter: a reject proves the exact check would fail,
      // so most non-dominating pairs cost a few float compares instead of
      // an envelope co-walk. Never changes which sets survive.
      if (wave::signature_rejects(winner.sig, cand.sig, tol)) {
        ++sig_rejects;
        continue;
      }
      ++exact_checks;
      if (wave::dominates(winner.envelope, cand.envelope, interval, tol)) {
        dominated = true;
        break;
      }
    }
    if (dominated) {
      if (stats != nullptr) ++stats->removed_dominated;
    } else {
      kept.push_back(std::move(cand));
    }
  }
  c_sig_rejects.add(sig_rejects);
  c_exact_checks.add(exact_checks);
  list = std::move(kept);
}

void apply_beam(std::vector<CandidateSet>& list, size_t beam_cap, PruneStats* stats) {
  if (beam_cap == 0 || list.size() <= beam_cap) return;
  std::sort(list.begin(), list.end(),
            [](const CandidateSet& a, const CandidateSet& b) { return a.score > b.score; });
  if (stats != nullptr) stats->removed_beam += list.size() - beam_cap;
  list.resize(beam_cap);
}

}  // namespace tka::topk
