#include "topk/dominance.hpp"

#include <algorithm>

namespace tka::topk {

void prune_dominated(std::vector<CandidateSet>& list,
                     const wave::DominanceInterval& interval, double tol,
                     PruneStats* stats) {
  if (stats != nullptr) stats->considered += list.size();
  if (list.size() < 2 || !interval.valid()) return;

  // Sort by score descending first: a set can only be dominated by one with
  // an equal-or-larger delay-noise score (its envelope is pointwise >= over
  // the interval that determines the score), so each set needs comparing
  // only against the survivors ahead of it.
  std::sort(list.begin(), list.end(),
            [](const CandidateSet& a, const CandidateSet& b) { return a.score > b.score; });

  std::vector<CandidateSet> kept;
  kept.reserve(list.size());
  for (CandidateSet& cand : list) {
    bool dominated = false;
    for (const CandidateSet& winner : kept) {
      if (wave::dominates(winner.envelope, cand.envelope, interval, tol)) {
        dominated = true;
        break;
      }
    }
    if (dominated) {
      if (stats != nullptr) ++stats->removed_dominated;
    } else {
      kept.push_back(std::move(cand));
    }
  }
  list = std::move(kept);
}

void apply_beam(std::vector<CandidateSet>& list, size_t beam_cap, PruneStats* stats) {
  if (beam_cap == 0 || list.size() <= beam_cap) return;
  std::sort(list.begin(), list.end(),
            [](const CandidateSet& a, const CandidateSet& b) { return a.score > b.score; });
  if (stats != nullptr) stats->removed_beam += list.size() - beam_cap;
  list.resize(beam_cap);
}

}  // namespace tka::topk
