#include "topk/dominance.hpp"

#include <algorithm>
#include <cstdint>

#include "obs/metrics.hpp"
#include "topk/sig_table.hpp"

namespace tka::topk {

void prune_dominated(std::vector<CandidateSet>& list,
                     const wave::DominanceInterval& interval, double tol,
                     PruneStats* stats) {
  if (stats != nullptr) stats->considered += list.size();
  if (list.size() < 2 || !interval.valid()) return;

  static obs::Counter& c_sig_rejects =
      obs::registry().counter("dominance.sig_rejects");
  static obs::Counter& c_exact_checks =
      obs::registry().counter("dominance.exact_checks");

  // Backfill signatures for candidates built outside the engine pipeline
  // (or against a different interval); the pre-filter below needs every
  // signature to describe exactly this interval.
  for (CandidateSet& s : list) {
    if (!wave::signature_matches(s.sig, interval)) {
      s.sig = wave::make_signature(s.envelope, interval);
    }
  }

  // Sort by score descending first: a set can only be dominated by one with
  // an equal-or-larger delay-noise score (its envelope is pointwise >= over
  // the interval that determines the score), so each set needs comparing
  // only against the survivors ahead of it.
  std::sort(list.begin(), list.end(),
            [](const CandidateSet& a, const CandidateSet& b) { return a.score > b.score; });

  std::uint64_t sig_rejects = 0;
  std::uint64_t exact_checks = 0;
  // Per-sweep scratch, thread-local so repeated prunes reuse the packed
  // columns' capacity. Winners' signatures are appended SoA as they
  // survive; each candidate sweeps the packed columns with its hoisted
  // compare constants instead of chasing them through the CandidateSet
  // structs.
  static thread_local SigTable winners;
  winners.clear();
  // Survivors are usually a small fraction of the candidates (dominated
  // sets are the point of the pass), so size the packed columns for a
  // typical kept count and let push_back growth cover outliers — reserving
  // list.size() would spike resident memory exactly when the candidate
  // list itself peaks.
  winners.reserve(std::min<std::size_t>(list.size(), 512));
  // Survivors compact in place: list[0, w) always holds the winners so far,
  // so no shadow `kept` vector doubles the candidate array at the moment
  // resident memory peaks. Stable — survivor order is unchanged.
  std::size_t w = 0;
  for (std::size_t i = 0; i < list.size(); ++i) {
    CandidateSet& cand = list[i];
    // Signature pre-filter over the packed winner columns: a reject proves
    // the exact check would fail, so most non-dominating pairs cost a few
    // packed float compares instead of an envelope co-walk. Each pair
    // evaluates the same predicate as wave::signature_rejects, in the same
    // winner order, stopping at the first dominating winner — so both the
    // survivors and the dominance.* counters are unchanged.
    const SigTable::Prepared prep = SigTable::prepare(cand.sig, tol);
    bool dominated = false;
    for (std::size_t j = 0; j < w; ++j) {
      if (winners.rejects(j, prep)) {
        ++sig_rejects;
        continue;
      }
      ++exact_checks;
      if (wave::dominates(list[j].envelope, cand.envelope, interval, tol)) {
        dominated = true;
        break;
      }
    }
    if (dominated) {
      if (stats != nullptr) ++stats->removed_dominated;
    } else {
      winners.push_back(cand.sig);
      if (w != i) list[w] = std::move(cand);
      ++w;
    }
  }
  c_sig_rejects.add(sig_rejects);
  c_exact_checks.add(exact_checks);
  list.resize(w);
}

void apply_beam(std::vector<CandidateSet>& list, size_t beam_cap, PruneStats* stats) {
  if (beam_cap == 0 || list.size() <= beam_cap) return;
  std::sort(list.begin(), list.end(),
            [](const CandidateSet& a, const CandidateSet& b) { return a.score > b.score; });
  if (stats != nullptr) stats->removed_beam += list.size() - beam_cap;
  list.resize(beam_cap);
}

}  // namespace tka::topk
