// Dominance pruning of candidate-set lists (paper §3.2, Theorem 1).
//
// Candidate sets of equal cardinality are partially ordered by envelope
// encapsulation over the victim's dominance interval. Any dominated set can
// be discarded: every extension of it is matched or beaten by the same
// extension of the dominating set.
#pragma once

#include <cstddef>

#include <vector>

#include "topk/aggressor.hpp"
#include "wave/envelope.hpp"

namespace tka::topk {

/// Pruning statistics accumulated across calls.
struct PruneStats {
  size_t considered = 0;
  size_t removed_dominated = 0;
  size_t removed_beam = 0;
};

/// Removes every dominated set from `list` (all sets must share one
/// cardinality and victim). Ties (mutually encapsulating envelopes) keep
/// the higher-scored set. O(n^2) pairwise comparisons, but most pairs are
/// settled by the O(1) envelope-signature pre-filter (a conservative
/// rejection test — see wave::signature_rejects and docs/KERNELS.md);
/// only the remainder pays the exact linear envelope co-walk. Counters
/// `dominance.sig_rejects` / `dominance.exact_checks` record the split.
void prune_dominated(std::vector<CandidateSet>& list,
                     const wave::DominanceInterval& interval, double tol,
                     PruneStats* stats = nullptr);

/// Sorts by score descending and truncates to `beam_cap` (0 = no cap).
void apply_beam(std::vector<CandidateSet>& list, size_t beam_cap,
                PruneStats* stats = nullptr);

}  // namespace tka::topk
