// Deterministic parallel top-n selection: per-worker local heaps merged by
// tree reduction.
//
// The sink-side selection ranks a few thousand scored items and keeps the
// best handful. Sorting the whole list serializes the tail of every
// cardinality; instead each work-stealing chunk keeps a local bounded heap
// of its own candidates and the caller merges the per-chunk survivors
// pairwise, tournament-style (the local-accumulate + tree-reduce idiom of
// multicore top-k kernels). At most n survivors leave any chunk or merge,
// so the reduction moves O(chunks * n) items no matter how large the input.
//
// Determinism contract: items are ordered by (score descending, index
// ascending) — a total order over item *properties*, never over worker or
// chunk identity. Chunk results depend only on the chunk's own items, and
// a pairwise merge of sorted runs under a total order is associative, so
// any chunking and any merge-tree shape yields the same final list —
// bit-identical from 1 thread to N, and equal to a stable descending sort
// of the whole input truncated to n.
#pragma once

#include <cstddef>

#include <algorithm>
#include <vector>

#include "runtime/task_graph.hpp"

namespace tka::topk {

/// Indices of the top `n` of `count` items, best first, ordered by
/// score(i) descending with the lower index winning ties. score(i) must be
/// a pure function of i for the duration of the call (chunks evaluate it
/// concurrently).
template <typename ScoreFn>
std::vector<std::size_t> select_top_n(int threads, std::size_t count,
                                      std::size_t n, ScoreFn&& score) {
  std::vector<std::size_t> out;
  if (n == 0 || count == 0) return out;

  struct Entry {
    double score;
    std::size_t index;
    bool operator<(const Entry& o) const {
      if (score != o.score) return score > o.score;
      return index < o.index;
    }
  };

  // One chunk per prospective lane; each fills its slot with its own top n,
  // sorted. The slot count (and each slot's content) depends only on
  // `count` and the items, not on which lane ran the chunk.
  const std::size_t resolved =
      threads > 0 ? static_cast<std::size_t>(threads) : 1;
  const std::size_t grain = std::max<std::size_t>(1, count / resolved / 4);
  const std::size_t chunks = (count + grain - 1) / grain;
  std::vector<std::vector<Entry>> local(chunks);
  runtime::parallel_for_dynamic(
      threads, 0, chunks,
      [&](std::size_t c) {
        const std::size_t lo = c * grain;
        const std::size_t hi = std::min(count, lo + grain);
        std::vector<Entry>& heap = local[c];
        heap.reserve(n + 1);
        for (std::size_t i = lo; i < hi; ++i) {
          Entry e{score(i), i};
          if (heap.size() < n) {
            heap.push_back(e);
            std::push_heap(heap.begin(), heap.end());  // max-heap of worst
          } else if (e < heap.front()) {
            std::pop_heap(heap.begin(), heap.end());
            heap.back() = e;
            std::push_heap(heap.begin(), heap.end());
          }
        }
        std::sort_heap(heap.begin(), heap.end());  // best first
      },
      /*grain=*/1);

  // Tree reduction: merge adjacent survivor runs pairwise until one run
  // remains. Each round halves the run count; truncating every merge to n
  // keeps the work bounded. Associativity of ordered merge makes the tree
  // shape irrelevant to the outcome.
  std::vector<Entry> merged;
  for (std::size_t width = 1; width < chunks; width *= 2) {
    for (std::size_t c = 0; c + width < chunks; c += 2 * width) {
      std::vector<Entry>& a = local[c];
      std::vector<Entry>& b = local[c + width];
      merged.clear();
      merged.reserve(std::min(n, a.size() + b.size()));
      std::size_t ia = 0, ib = 0;
      while (merged.size() < n && (ia < a.size() || ib < b.size())) {
        if (ib >= b.size() || (ia < a.size() && a[ia] < b[ib])) {
          merged.push_back(a[ia++]);
        } else {
          merged.push_back(b[ib++]);
        }
      }
      a.swap(merged);
      b.clear();
    }
  }
  out.reserve(local[0].size());
  for (const Entry& e : local[0]) out.push_back(e.index);
  return out;
}

}  // namespace tka::topk
