// Candidate aggressor sets (paper §3).
//
// A candidate set is a set of aggressor-victim couplings (CapIds) together
// with its combined noise envelope referenced to one victim net, and the
// cached score at that victim (delay noise in addition mode, noise
// reduction in elimination mode). The "innate cardinality" of pseudo and
// higher-order members is handled naturally: `members` always holds the
// underlying coupling ids, so |members| is the set's true cardinality.
#pragma once

#include <cstddef>

#include <cstdint>
#include <vector>

#include "layout/parasitics.hpp"
#include "wave/envelope.hpp"
#include "wave/pwl.hpp"

namespace tka::topk {

/// One candidate aggressor set at a fixed victim.
struct CandidateSet {
  std::vector<layout::CapId> members;  ///< sorted, unique coupling ids
  wave::Pwl envelope;                  ///< combined envelope at the victim
  double score = 0.0;                  ///< mode-dependent; larger is worse-case
  /// Envelope signature over the victim's dominance interval, the cheap
  /// pre-filter of `prune_dominated`. Computed where the candidate is built
  /// (the interval is known there); `prune_dominated` backfills stale or
  /// missing signatures, so leaving it invalid is always safe.
  wave::EnvelopeSignature sig;

  size_t cardinality() const { return members.size(); }
};

/// Sorted-unique union of `members` and {extra}. Returns false (and leaves
/// `out` unspecified) when `extra` is already present — the combination
/// belongs to a lower cardinality and was enumerated there.
bool union_with(const std::vector<layout::CapId>& members, layout::CapId extra,
                std::vector<layout::CapId>& out);

/// Sorted-unique union of two member vectors; false on any overlap.
bool union_disjoint(const std::vector<layout::CapId>& a,
                    const std::vector<layout::CapId>& b,
                    std::vector<layout::CapId>& out);

/// FNV-1a hash of a member vector (for I-list dedup buckets).
std::uint64_t members_hash(const std::vector<layout::CapId>& members);

}  // namespace tka::topk
