#include "topk/aggressor.hpp"

#include <algorithm>

namespace tka::topk {

bool union_with(const std::vector<layout::CapId>& members, layout::CapId extra,
                std::vector<layout::CapId>& out) {
  if (std::binary_search(members.begin(), members.end(), extra)) return false;
  out.clear();
  out.reserve(members.size() + 1);
  auto it = std::lower_bound(members.begin(), members.end(), extra);
  out.insert(out.end(), members.begin(), it);
  out.push_back(extra);
  out.insert(out.end(), it, members.end());
  return true;
}

bool union_disjoint(const std::vector<layout::CapId>& a,
                    const std::vector<layout::CapId>& b,
                    std::vector<layout::CapId>& out) {
  out.clear();
  out.reserve(a.size() + b.size());
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return false;
    if (a[i] < b[j]) {
      out.push_back(a[i++]);
    } else {
      out.push_back(b[j++]);
    }
  }
  out.insert(out.end(), a.begin() + static_cast<long>(i), a.end());
  out.insert(out.end(), b.begin() + static_cast<long>(j), b.end());
  return true;
}

std::uint64_t members_hash(const std::vector<layout::CapId>& members) {
  std::uint64_t h = 1469598103934665603ULL;
  for (layout::CapId id : members) {
    h ^= id;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace tka::topk
