// The I-list container (paper §3.2): candidate sets of one cardinality at
// one victim, deduplicated by membership, reducible to the non-dominated
// (irredundant) subset.
#pragma once

#include <cstddef>

#include <span>
#include <unordered_map>
#include <vector>

#include "topk/aggressor.hpp"
#include "topk/dominance.hpp"

namespace tka::topk {

/// Deduplicating list of candidate sets (one victim, one cardinality).
class IList {
 public:
  IList() = default;

  /// Adds `set`; if an identical member-set is already present, keeps the
  /// higher-scoring of the two (the same physical set can be discovered
  /// through several construction channels — e.g. as a local primary and
  /// as an upstream pseudo aggressor — with differently complete
  /// envelopes). Returns true when the list changed.
  bool try_add(CandidateSet set);

  /// Reduces to the irredundant (non-dominated) subset, then applies the
  /// beam cap. `use_dominance` false skips the Pareto step (ablation).
  ///
  /// `victim_caps` (the victim's own extendable couplings) closes a
  /// soundness hole in naive Theorem-1 pruning: if every dominator of Q
  /// already contains cap c, pruning Q makes Q ∪ {c} unreachable even
  /// though no kept set can be extended by c into a dominating set. For
  /// each cap the best candidate *not containing it* is therefore retained
  /// as an extension seed, exempt from pruning and the beam.
  void reduce(const wave::DominanceInterval& interval, double tol,
              size_t beam_cap, bool use_dominance, PruneStats* stats,
              std::span<const layout::CapId> victim_caps = {});

  const std::vector<CandidateSet>& sets() const { return sets_; }
  bool empty() const { return sets_.empty(); }
  size_t size() const { return sets_.size(); }

  /// Highest-scored set; asserts non-empty. O(1): the best index is
  /// maintained by try_add and recomputed once per reduce, with the same
  /// tie-breaking as a first-strictly-greater scan (lowest index wins).
  const CandidateSet& best() const;

  /// Approximate heap footprint of this list (set storage including member
  /// vectors and envelope points, plus the dedup index). Feeds the
  /// mem.candidate_tables_bytes gauge; observability only, never exact.
  std::size_t approx_bytes() const;

  void clear();

 private:
  static constexpr size_t kNoBest = static_cast<size_t>(-1);

  std::vector<CandidateSet> sets_;
  std::unordered_multimap<std::uint64_t, size_t> index_;  // members_hash -> idx
  size_t best_ = kNoBest;  // index of best(); kNoBest when empty
};

}  // namespace tka::topk
