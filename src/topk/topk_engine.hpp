// The top-k aggressor-set engine (paper §3, Figure 9).
//
// Implicit bottom-up enumeration: for cardinality i = 1..k, every victim
// net (in topological order) builds its list_i from
//   1. one-more-primary extensions of its I-list_{i-1},
//   2. pseudo input aggressors of cardinality i propagated from fanins,
//   3. higher-order aggressors (primaries whose window is widened/narrowed
//      by the aggressor net's own worst (i-1)-set),
// then reduces it to the irredundant list by dominance pruning plus an
// optional beam cap. The reported top-k set is the best member of the sink
// I-list_k; the engine re-evaluates it with the full iterative noise
// analysis so the reported circuit delay is honest.
//
// Addition mode starts from noiseless windows and maximizes delay noise;
// elimination mode starts from the fully-noisy fixpoint windows and
// maximizes the noise reduction of removing the set (paper §3.4).
#pragma once

#include <cstddef>

#include <limits>
#include <span>

#include "noise/aggressor_filter.hpp"
#include "noise/iterative.hpp"
#include "topk/irredundant_list.hpp"
#include "topk/pseudo_aggressor.hpp"

namespace tka::topk {

/// Engine controls.
struct TopkOptions {
  int k = 10;
  Mode mode = Mode::kAddition;

  /// Worker threads for the level-wavefront victim sweep, the baseline /
  /// re-evaluation fixpoints and the finalist re-ranking. 0 = resolve from
  /// TKA_THREADS, then hardware concurrency (see runtime/runtime.hpp);
  /// 1 = exact serial execution through the same code path. Results are
  /// bit-identical for every thread count.
  int threads = 0;

  bool use_dominance = true;        ///< ablation: Pareto pruning on/off
  bool use_pseudo = true;           ///< ablation: fanin propagation on/off
  bool use_higher_order = true;     ///< ablation: indirect aggressors on/off
  bool propagate_full_ilist = true; ///< false: only each fanin's winner set
  bool use_filter = true;           ///< false-aggressor prefilter

  /// Beam cap on every I-list after dominance pruning (0 = unbounded;
  /// unbounded is exact but can blow up on dense circuits).
  size_t beam_cap = 48;

  /// Keep only the N largest couplings per victim during enumeration
  /// (0 = all). This is the industry practice the paper's introduction
  /// describes ("restricting the set of primary aggressors for each victim
  /// to a few, say 10, by maximum coupling"); the engine still considers
  /// their indirect/pseudo interactions exactly.
  size_t max_primary_per_victim = 0;

  double envelope_tol = 2e-4;   ///< PWL simplification tolerance (V)
  double dominance_tol = 1e-6;  ///< envelope-encapsulation tolerance (V)

  /// Victims with STA slack above this threshold skip primary enumeration
  /// (they still propagate pseudo aggressors). infinity = process all.
  double victim_slack_threshold = std::numeric_limits<double>::infinity();

  bool reevaluate = true;  ///< full iterative re-evaluation of the result

  /// When re-evaluating, also exactly evaluate up to this many of the
  /// sink's best cardinality-k candidates and keep the true optimum among
  /// them. Closes small first-order scoring gaps (mainly in elimination
  /// mode, where removing a set perturbs the fixpoint). 0 disables.
  size_t rerank_top = 6;

  noise::IterativeOptions iterative;  ///< baseline/evaluation controls
  noise::FilterOptions filter;
};

/// Counters for reporting and the ablation benches.
///
/// All times are wall-clock **seconds** measured on the obs monotonic clock
/// (obs/clock.hpp) — the same source the tracer stamps spans with, so these
/// numbers line up with `--trace` / `--metrics` output. Counter-derived
/// fields (`sets_generated`) are populated from the obs metrics registry at
/// the end of a run and read 0 when the library is built with
/// TKA_OBS_DISABLED; the timing fields and `max_list_size`/`prune` are
/// always populated.
struct TopkStats {
  int threads = 1;            ///< resolved worker count the run used
  size_t sets_generated = 0;  ///< candidate sets scored (registry-backed)
  size_t max_list_size = 0;   ///< largest I-list seen after reduction
  PruneStats prune;           ///< dominance/beam removal tallies
  double runtime_s = 0.0;     ///< whole-run wall-clock seconds
  /// Cumulative wall-clock seconds from run start to the end of each
  /// cardinality i (index i-1); runtime_by_k.back() ~ runtime_s minus the
  /// final re-evaluation.
  std::vector<double> runtime_by_k;
};

/// Engine output.
struct TopkResult {
  Mode mode = Mode::kAddition;
  std::vector<layout::CapId> members;  ///< the chosen top-k coupling set

  double baseline_delay = 0.0;   ///< no-aggressor (addition) / all-aggressor (elim)
  double reference_delay = 0.0;  ///< the opposite extreme, for context
  double estimated_delay = 0.0;  ///< estimator's circuit delay with the set
  double evaluated_delay = 0.0;  ///< full iterative re-evaluation

  /// Per-cardinality trail (index i-1 = cardinality i): the winning set and
  /// the estimator's circuit delay, so one k=K run yields the whole curve.
  std::vector<std::vector<layout::CapId>> set_by_k;
  std::vector<double> estimated_delay_by_k;

  /// Up to a handful of runner-up sink sets per cardinality (best first).
  /// Callers that report a delay at cardinality i can exactly re-evaluate
  /// these along with set_by_k[i-1] and keep the true best — the estimator
  /// ranks conservatively, especially in elimination mode.
  std::vector<std::vector<std::vector<layout::CapId>>> finalists_by_k;

  noise::NoiseReport all_aggressor_report;  ///< the mask=all fixpoint
  TopkStats stats;
};

/// The engine. Stateless between runs; bind once per design.
class TopkEngine {
 public:
  TopkEngine(const net::Netlist& nl, const layout::Parasitics& par,
             const sta::DelayModel& model, const noise::CouplingCalculator& calc)
      : nl_(&nl), par_(&par), model_(&model), calc_(&calc) {}

  TopkResult run(const TopkOptions& options) const;

  /// Evaluates the circuit delay with exactly `members` active (addition)
  /// or with `members` removed from the full set (elimination), via the
  /// iterative fixpoint. Used for re-evaluation and by benches.
  double evaluate_set(std::span<const layout::CapId> members, Mode mode,
                      const noise::IterativeOptions& iterative) const;

 private:
  const net::Netlist* nl_;
  const layout::Parasitics* par_;
  const sta::DelayModel* model_;
  const noise::CouplingCalculator* calc_;
};

}  // namespace tka::topk
