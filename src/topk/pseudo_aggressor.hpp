// Pseudo input aggressors (paper §3.1).
//
// The delay noise a candidate set causes at a fanin net shifts the victim
// driver's output transition. The pseudo envelope re-expresses that shift
// as a noise envelope referenced to the victim output, which restores the
// usual "subtract envelope from transition" superposition:
//
//   addition:    P(t) = ramp(t50) - ramp(t50 + shift)      (output later)
//   elimination: P(t) = ramp(t50 - shift) - ramp(t50)      (output earlier)
//
// Both are non-negative trapezoids of height min(Vdd, Vdd*shift/trans).
// Subtracting P from the victim transition (addition) or from the total
// envelope (elimination) reproduces the shifted waveform exactly.
#pragma once

#include <cstddef>

#include <span>

#include "wave/pwl.hpp"

namespace tka::topk {

/// Analysis direction.
enum class Mode {
  kAddition,     ///< start noiseless, find the k couplings that hurt most
  kElimination,  ///< start fully noisy, find the k couplings to fix
};

/// Builds the pseudo envelope for an output transition with the given t50
/// and transition time. `shift` >= 0 is the propagated t50 displacement at
/// the victim output. Returns an empty waveform for shift == 0.
wave::Pwl pseudo_envelope(double t50, double trans, double vdd, double shift,
                          Mode mode);

/// Transfers a t50 shift across a gate. `input_lats` are the LATs of all
/// fanins, `which` indexes the shifted fanin, `shift` its displacement.
/// Addition: the output moves later only to the extent the shifted input
/// overtakes the controlling input. Elimination: the output moves earlier
/// only while the shifted input stays controlling.
double propagate_shift(std::span<const double> input_lats, size_t which,
                       double shift, Mode mode);

}  // namespace tka::topk
