// Thin wrapper over the staged pipeline: a one-shot run is a single-query
// AnalysisSession with candidate retention off (two-layer rolling memory).
// The stages themselves live in src/topk/stages/, the orchestration in
// src/session/analysis_session.cpp.
#include "topk/topk_engine.hpp"

#include "session/analysis_session.hpp"
#include "topk/stages/baseline_stage.hpp"

namespace tka::topk {

TopkResult TopkEngine::run(const TopkOptions& options) const {
  session::SessionOptions sopt;
  sopt.retain_candidates = false;
  session::AnalysisSession s(*nl_, *par_, *model_, *calc_, sopt);
  return s.run(options);
}

double TopkEngine::evaluate_set(std::span<const layout::CapId> members,
                                Mode mode,
                                const noise::IterativeOptions& iterative) const {
  return stages::BaselineStage::masked_delay({nl_, par_, model_, calc_},
                                             members, mode, iterative);
}

}  // namespace tka::topk
