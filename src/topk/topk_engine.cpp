#include "topk/topk_engine.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "net/topo.hpp"
#include "obs/obs.hpp"
#include "runtime/runtime.hpp"
#include "runtime/wavefront.hpp"
#include "sta/critical_path.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace tka::topk {
namespace {

constexpr double kShiftEps = 1e-9;  // ignore sub-picosecond pseudo shifts

// Per-victim candidate-generation ceiling. Only reachable when both
// dominance pruning and the beam cap are disabled (the blow-up the paper's
// §3.2 prevents); keeps such runs bounded instead of exhausting memory.
constexpr size_t kGenerationCap = 40000;

}  // namespace

double TopkEngine::evaluate_set(std::span<const layout::CapId> members, Mode mode,
                                const noise::IterativeOptions& iterative) const {
  noise::CouplingMask mask = (mode == Mode::kAddition)
                                 ? noise::CouplingMask::none(par_->num_couplings())
                                 : noise::CouplingMask::all(par_->num_couplings());
  for (layout::CapId id : members) mask.set(id, mode == Mode::kAddition);
  const noise::NoiseReport report =
      noise::analyze_iterative(*nl_, *par_, *model_, *calc_, mask, iterative);
  return report.noisy_delay;
}

TopkResult TopkEngine::run(const TopkOptions& opt) const {
  TKA_ASSERT(opt.k >= 1);
  // All run timing below comes from the obs monotonic clock so TopkStats,
  // span durations and registry values agree with each other.
  const std::int64_t run_start_ns = obs::now_ns();
  const int threads = runtime::resolve_threads(opt.threads);
  // The fixpoints the engine itself launches (baseline, re-evaluation)
  // inherit the run's worker count unless the caller pinned their own.
  noise::IterativeOptions iter_opt = opt.iterative;
  if (iter_opt.threads == 0) iter_opt.threads = threads;
  obs::ScopedSpan run_span("topk.run");
  run_span.arg("k", static_cast<std::int64_t>(opt.k))
      .arg("mode", opt.mode == Mode::kAddition ? "addition" : "elimination")
      .arg("threads", static_cast<std::int64_t>(threads));

  // Per-run metric handles, hoisted out of the hot loops. TopkStats counter
  // fields are populated from registry deltas at the end of the run (and
  // therefore read 0 when observability is compiled out).
  obs::MetricsRegistry& reg = obs::registry();
  obs::Counter& c_sets = reg.counter("topk.sets_generated");
  obs::Counter& c_dominance = reg.counter("topk.dominance_pruned");
  obs::Counter& c_beam = reg.counter("topk.beam_capped");
  obs::Counter& c_gen_cap = reg.counter("topk.generation_capped");
  obs::Histogram& h_ilist = reg.histogram("topk.ilist_size", 1.0, 65536.0);
  reg.counter("topk.runs").add(1);
  const std::uint64_t sets_before = c_sets.value();

  TopkResult result;
  result.mode = opt.mode;

  const size_t num_nets = nl_->num_nets();
  const size_t num_caps = par_->num_couplings();
  const noise::CouplingMask mask_all = noise::CouplingMask::all(num_caps);
  noise::NoiseAnalyzer analyzer(*nl_, *par_, *model_);
  const double vdd = analyzer.vdd();

  log::info() << "topk: start k=" << opt.k << " mode="
              << (opt.mode == Mode::kAddition ? "addition" : "elimination")
              << " nets=" << num_nets << " couplings=" << num_caps;

  // Baseline analyses. The all-aggressor fixpoint is always computed: it is
  // the elimination starting point and the addition reference.
  {
    obs::ScopedSpan baseline_span("topk.baseline");
    result.all_aggressor_report = noise::analyze_iterative(
        *nl_, *par_, *model_, *calc_, mask_all, iter_opt);
  }
  const noise::NoiseReport& all_rep = result.all_aggressor_report;

  const bool addition = (opt.mode == Mode::kAddition);
  const sta::WindowTable& windows =
      addition ? all_rep.noiseless_windows : all_rep.noisy_windows;
  if (addition) {
    result.baseline_delay = all_rep.noiseless_delay;
    result.reference_delay = all_rep.noisy_delay;
  } else {
    result.baseline_delay = all_rep.noisy_delay;
    result.reference_delay = all_rep.noiseless_delay;
  }

  noise::EnvelopeBuilder builder(*nl_, *par_, *calc_, windows);

  // Victim reference t50: in elimination mode the victim transition is the
  // net's noisy arrival minus its own local noise (upstream noise stays in).
  std::vector<double> vic_t50(num_nets);
  for (net::NetId v = 0; v < num_nets; ++v) {
    vic_t50[v] = addition ? windows[v].lat
                          : windows[v].lat - all_rep.delay_noise[v];
  }

  // False-aggressor prefilter and the per-victim active coupling lists.
  std::unique_ptr<noise::AggressorFilter> filter;
  if (opt.use_filter) {
    filter = std::make_unique<noise::AggressorFilter>(*nl_, *par_, analyzer,
                                                      builder, opt.filter);
  }
  std::vector<std::vector<layout::CapId>> active_caps(num_nets);
  for (layout::CapId id = 0; id < num_caps; ++id) {
    const layout::CouplingCap& cc = par_->coupling(id);
    if (cc.cap_pf <= 0.0) continue;
    for (const net::NetId v : {cc.net_a, cc.net_b}) {
      if (filter && filter->is_false(v, id)) continue;
      active_caps[v].push_back(id);
    }
  }
  if (opt.max_primary_per_victim > 0) {
    for (auto& caps : active_caps) {
      if (caps.size() <= opt.max_primary_per_victim) continue;
      std::sort(caps.begin(), caps.end(), [&](layout::CapId a, layout::CapId b) {
        return par_->coupling(a).cap_pf > par_->coupling(b).cap_pf;
      });
      caps.resize(opt.max_primary_per_victim);
      std::sort(caps.begin(), caps.end());
    }
  }

  // Victim transitions and (elimination) total envelopes.
  std::vector<wave::Pwl> vic_wave(num_nets);
  std::vector<wave::Pwl> total_env(num_nets);
  std::vector<double> dn_total(num_nets, 0.0);
  for (net::NetId v = 0; v < num_nets; ++v) {
    const double trans = std::max(windows[v].trans_late, 1e-4);
    vic_wave[v] = wave::make_rising_ramp(vic_t50[v], trans, vdd);
    if (!addition && !active_caps[v].empty()) {
      std::vector<const wave::Pwl*> terms;
      for (layout::CapId id : active_caps[v]) {
        const wave::Pwl& e = builder.envelope(v, id);
        if (!e.empty()) terms.push_back(&e);
      }
      total_env[v] = wave::Pwl::sum(terms).simplified(opt.envelope_tol);
      dn_total[v] = noise::delay_noise(vic_wave[v], total_env[v], vdd, vic_t50[v]);
    }
  }

  // Mode-uniform score: larger is "more impactful". Elimination uses the
  // *signed* residual shift: removing pseudo aggressors can move the
  // transition earlier than the local-noiseless reference, and that benefit
  // must not be clamped away.
  auto score_env = [&](net::NetId v, const wave::Pwl& env) {
    if (addition) return noise::delay_noise(vic_wave[v], env, vdd, vic_t50[v]);
    const double residual =
        noise::delay_shift(vic_wave[v], total_env[v].minus(env), vdd, vic_t50[v]);
    return std::max(0.0, dn_total[v] - residual);
  };

  // Dominance intervals with propagated upper bounds: cum_ub accumulates
  // the primary upper bound down every path so pseudo envelopes are also
  // covered by the interval.
  const std::vector<net::NetId> topo = net::topological_nets(*nl_);
  std::vector<double> cum_ub(num_nets, 0.0);
  for (net::NetId v : topo) {
    double ub = analyzer.delay_noise_upper_bound(v, builder, mask_all);
    const net::Net& n = nl_->net(v);
    double fanin_ub = 0.0;
    if (n.driver != net::kInvalidGate) {
      for (net::NetId in : nl_->gate(n.driver).inputs) {
        fanin_ub = std::max(fanin_ub, cum_ub[in]);
      }
    }
    cum_ub[v] = ub + fanin_ub;
  }
  std::vector<wave::DominanceInterval> iv(num_nets);
  for (net::NetId v = 0; v < num_nets; ++v) {
    iv[v] = {vic_t50[v], vic_t50[v] + cum_ub[v] + 1e-6};
  }

  // Victim restriction by slack (primaries only; pseudo always propagates).
  // Slacks are also the fallback sink estimate when pseudo propagation is
  // disabled (ablation): a victim's noise is then assumed to ride its worst
  // path to the sink unclamped.
  std::vector<char> full_victim(num_nets, 1);
  std::vector<double> base_slack;
  if (std::isfinite(opt.victim_slack_threshold) || !opt.use_pseudo) {
    const sta::StaResult base_sta = sta::run_sta(*nl_, *model_, opt.iterative.sta);
    base_slack = sta::net_slacks(*nl_, base_sta);
    if (std::isfinite(opt.victim_slack_threshold)) {
      for (net::NetId v = 0; v < num_nets; ++v) {
        full_victim[v] = base_slack[v] <= opt.victim_slack_threshold ? 1 : 0;
      }
    }
  }

  // Winner trail per (net, cardinality): score and members.
  const size_t k = static_cast<size_t>(opt.k);
  std::vector<std::vector<double>> winner_score(num_nets,
                                                std::vector<double>(k + 1, -1.0));
  std::vector<std::vector<std::vector<layout::CapId>>> winner_members(
      num_nets, std::vector<std::vector<layout::CapId>>(k + 1));

  // Previous- and current-cardinality layers.
  std::vector<std::vector<CandidateSet>> prev(num_nets);
  for (net::NetId v = 0; v < num_nets; ++v) {
    if (full_victim[v]) prev[v].push_back(CandidateSet{});  // the empty set
  }
  std::vector<IList> cur(num_nets);

  const std::vector<net::NetId> pos = nl_->primary_outputs();
  std::vector<net::NetId> sinks = pos;
  if (sinks.empty()) sinks.push_back(all_rep.worst_po);

  // Active caps sorted by size, for padding: a winning set of cardinality
  // j < i is still the best exactly-i choice when a victim's couplings run
  // out — the budget is completed with the largest unused caps (adding more
  // aggressors never lowers the addition delay; removing more never raises
  // the elimination one).
  std::vector<layout::CapId> caps_by_size;
  for (layout::CapId id = 0; id < num_caps; ++id) {
    if (par_->coupling(id).cap_pf > 0.0) caps_by_size.push_back(id);
  }
  std::sort(caps_by_size.begin(), caps_by_size.end(),
            [&](layout::CapId a, layout::CapId b) {
              return par_->coupling(a).cap_pf > par_->coupling(b).cap_pf;
            });
  auto pad_to = [&](std::vector<layout::CapId> members, size_t card) {
    for (layout::CapId id : caps_by_size) {
      if (members.size() >= card) break;
      std::vector<layout::CapId> merged;
      if (union_with(members, id, merged)) members = std::move(merged);
    }
    return members;
  };

  // Virtual-sink state (elimination): the circuit delay is the max over all
  // POs, so the best removal set can span several PO cones. Candidate sink
  // sets carry per-PO reduction contributions and are combined across the
  // worst few POs (the paper's single "sink node", generalized). Addition
  // needs no cross-PO unions: max(lat_q + add_q) is always maximized by
  // concentrating the whole budget on one PO.
  struct SinkSet {
    std::vector<layout::CapId> members;
    std::vector<std::pair<net::NetId, double>> per_po;  // reduction at PO
    double est_delay = 0.0;
  };
  constexpr size_t kSinkPoLimit = 8;
  constexpr size_t kSinkBeam = 64;
  std::vector<net::NetId> hot_pos = sinks;
  std::sort(hot_pos.begin(), hot_pos.end(), [&](net::NetId a, net::NetId b) {
    return windows[a].lat > windows[b].lat;
  });
  if (hot_pos.size() > kSinkPoLimit) hot_pos.resize(kSinkPoLimit);
  auto sink_est_delay = [&](const SinkSet& s) {
    double worst = 0.0;
    for (net::NetId q : sinks) {
      double red = 0.0;
      for (const auto& [p, r] : s.per_po) {
        if (p == q) red = r;
      }
      worst = std::max(worst, windows[q].lat - red);
    }
    return worst;
  };
  std::vector<std::vector<SinkSet>> sink_lists(k + 1);

  // Victims within one topological level never feed each other's driver
  // cone, so each level is one parallel batch with a barrier in between
  // (runtime/wavefront.hpp). All cross-victim reads inside a batch are of
  // completed earlier levels (fanins for pseudo propagation) or of
  // barrier-published snapshots (elimination higher-order, below); every
  // write lands in the victim's own pre-sized slot, and all reductions run
  // on the calling thread in index order — so the result is bit-identical
  // for every thread count, including the serial --threads 1 fallback
  // which walks the same wavefront inline.
  const runtime::Wavefront wavefront(*nl_);

  // Elimination's higher-order atoms read the coupled aggressor's
  // *current*-cardinality winner. Under the wavefront that winner is
  // published at the aggressor's level barrier: aggressors at lower levels
  // expose this sweep's winner, aggressors at the same or a higher level
  // expose the previous sweep's (nothing yet in sweep 0). The snapshot is
  // what makes this read race-free and thread-count independent.
  struct BestSnap {
    bool valid = false;
    double score = -1.0;
    std::vector<layout::CapId> members;
  };
  std::vector<BestSnap> ho_snap(addition ? 0 : num_nets);

  // Elimination needs a second sweep per cardinality: its indirect
  // (window-narrowing) atoms reference the aggressor net's *current*-
  // cardinality winner, which only exists after the first sweep when the
  // aggressor follows the victim in the level order. Lists deduplicate,
  // so the second sweep is a pure refinement.
  const int sweeps = addition ? 1 : 2;
  for (size_t i = 1; i <= k; ++i) {
    const std::int64_t card_start_ns = obs::now_ns();
    obs::ScopedSpan card_span(str::format("topk.cardinality.%zu", i));
    for (BestSnap& s : ho_snap) s.valid = false;

    // The per-victim body. Runs on pool workers; everything it touches is
    // either read-only shared state, the victim's own slot, or the
    // caller-merged out-params.
    auto process_victim = [&](net::NetId v, size_t i, int sweep,
                              PruneStats* prune_out, size_t* max_list_out) {
      std::vector<layout::CapId> tmp_members;
      obs::ScopedSpan victim_span("topk.victim");
      if (victim_span.recording()) {
        victim_span.arg("net", nl_->net(v).name)
            .arg("i", static_cast<std::int64_t>(i))
            .arg("sweep", static_cast<std::int64_t>(sweep));
      }
      IList& list = cur[v];
      if (sweep == 0) list.clear();

      // Step 1: extend I-list_{i-1} with one additional primary aggressor.
      if (full_victim[v]) {
        for (const CandidateSet& s : prev[v]) {
          if (list.size() >= kGenerationCap) {
            c_gen_cap.add(1);
            if (log::enabled(log::Level::kDebug)) {
              log::debug() << "topk: victim " << nl_->net(v).name
                           << " hit the generation cap at cardinality " << i;
            }
            break;
          }
          for (layout::CapId cap : active_caps[v]) {
            const wave::Pwl& cap_env = builder.envelope(v, cap);
            if (cap_env.empty()) continue;
            if (!union_with(s.members, cap, tmp_members)) continue;
            CandidateSet cand;
            cand.members = tmp_members;
            cand.envelope = s.envelope.plus(cap_env);
            if (cand.envelope.size() > 24) {
              cand.envelope = cand.envelope.simplified(opt.envelope_tol);
            }
            cand.score = score_env(v, cand.envelope);
            c_sets.add(1);
            list.try_add(std::move(cand));
          }
        }
      }

      const net::Net& n = nl_->net(v);

      // Step 2: pseudo input aggressors of cardinality i from each fanin.
      if (opt.use_pseudo && n.driver != net::kInvalidGate) {
        const net::Gate& g = nl_->gate(n.driver);
        std::vector<double> fanin_lats;
        fanin_lats.reserve(g.inputs.size());
        for (net::NetId in : g.inputs) fanin_lats.push_back(windows[in].lat);
        const double trans = std::max(windows[v].trans_late, 1e-4);
        auto add_pseudo = [&](std::vector<layout::CapId> members, double shift) {
          if (shift <= kShiftEps) return;
          CandidateSet cand;
          cand.members = std::move(members);
          cand.envelope = pseudo_envelope(vic_t50[v], trans, vdd, shift, opt.mode);
          // A propagated set can also couple the victim directly; both
          // effects are real and additive, so fold the local envelopes of
          // any member that is a primary of v into the pseudo envelope.
          for (layout::CapId cap : active_caps[v]) {
            if (!std::binary_search(cand.members.begin(), cand.members.end(), cap)) {
              continue;
            }
            const wave::Pwl& ce = builder.envelope(v, cap);
            if (!ce.empty()) cand.envelope = cand.envelope.plus(ce);
          }
          if (cand.envelope.size() > 24) {
            cand.envelope = cand.envelope.simplified(opt.envelope_tol);
          }
          cand.score = score_env(v, cand.envelope);
          c_sets.add(1);
          list.try_add(std::move(cand));
        };
        // Fanins sit at strictly lower levels, so their current-cardinality
        // lists are complete by this level's barrier.
        for (size_t j = 0; j < g.inputs.size(); ++j) {
          const net::NetId u = g.inputs[j];
          if (cur[u].empty()) continue;
          const size_t take = opt.propagate_full_ilist ? cur[u].size() : 1;
          for (size_t si = 0; si < take; ++si) {
            const CandidateSet& s = opt.propagate_full_ilist
                                        ? cur[u].sets()[si]
                                        : cur[u].best();
            const double shift =
                propagate_shift(fanin_lats, j, std::max(s.score, 0.0), opt.mode);
            add_pseudo(s.members, shift);
          }
        }
        // Elimination on reconvergent logic, part 1: the same member set
        // often reduces several fanins at once (shared fanin cones; a cap's
        // two victim sides). Gather identical sets across fanins and apply
        // all their reductions jointly before the max-clamp.
        if (!addition && g.inputs.size() >= 2) {
          struct Joint {
            const std::vector<layout::CapId>* members = nullptr;
            std::vector<std::pair<size_t, double>> reductions;  // fanin, rho
          };
          std::unordered_map<std::uint64_t, Joint> joint;
          for (size_t j = 0; j < g.inputs.size(); ++j) {
            const net::NetId u = g.inputs[j];
            if (cur[u].empty()) continue;
            for (const CandidateSet& s : cur[u].sets()) {
              if (s.score <= kShiftEps) continue;
              Joint& entry = joint[members_hash(s.members)];
              if (entry.members != nullptr && *entry.members != s.members) {
                continue;  // hash collision; drop the rarer set
              }
              entry.members = &s.members;
              entry.reductions.emplace_back(j, s.score);
            }
          }
          double max_lat = -std::numeric_limits<double>::infinity();
          for (double lat : fanin_lats) max_lat = std::max(max_lat, lat);
          for (const auto& [hash, entry] : joint) {
            if (entry.reductions.size() < 2) continue;  // singles done above
            std::vector<double> lats = fanin_lats;
            for (const auto& [j, rho] : entry.reductions) lats[j] -= rho;
            double new_max = -std::numeric_limits<double>::infinity();
            for (double lat : lats) new_max = std::max(new_max, lat);
            add_pseudo(*entry.members, std::max(0.0, max_lat - new_max));
          }
        }
        // Elimination on reconvergent logic, part 2: speeding up one fanin
        // is clamped by the other's arrival, so also form balanced unions
        // of the two latest fanins' winner sets (cardinality j + (i-j)).
        if (!addition && g.inputs.size() >= 2 && i >= 2) {
          size_t a_idx = 0;
          size_t b_idx = 1;
          if (fanin_lats[b_idx] > fanin_lats[a_idx]) std::swap(a_idx, b_idx);
          for (size_t j = 2; j < g.inputs.size(); ++j) {
            if (fanin_lats[j] > fanin_lats[a_idx]) {
              b_idx = a_idx;
              a_idx = j;
            } else if (fanin_lats[j] > fanin_lats[b_idx]) {
              b_idx = j;
            }
          }
          const net::NetId ua = g.inputs[a_idx];
          const net::NetId ub = g.inputs[b_idx];
          for (size_t j = 1; j < i; ++j) {
            const double ra = winner_score[ua][j];
            const double rb = winner_score[ub][i - j];
            if (ra <= kShiftEps || rb <= kShiftEps) continue;
            if (!union_disjoint(winner_members[ua][j], winner_members[ub][i - j],
                                tmp_members)) {
              continue;
            }
            double new_max = -std::numeric_limits<double>::infinity();
            for (size_t fi = 0; fi < g.inputs.size(); ++fi) {
              double lat = fanin_lats[fi];
              if (fi == a_idx) lat -= ra;
              if (fi == b_idx) lat -= rb;
              new_max = std::max(new_max, lat);
            }
            double max_lat = -std::numeric_limits<double>::infinity();
            for (double lat : fanin_lats) max_lat = std::max(max_lat, lat);
            add_pseudo(tmp_members, std::max(0.0, max_lat - new_max));
          }
        }
      }

      // Step 3: higher-order aggressors of cardinality i.
      if (opt.use_higher_order && full_victim[v] && i >= 2) {
        for (layout::CapId cap : active_caps[v]) {
          const net::NetId a = par_->coupling(cap).other(v);
          if (addition) {
            // The aggressor's own worst (i-1)-set widens its window.
            const double widen = winner_score[a][i - 1];
            if (widen <= kShiftEps) continue;
            if (!union_with(winner_members[a][i - 1], cap, tmp_members)) continue;
            CandidateSet cand;
            cand.members = tmp_members;
            cand.envelope = builder.envelope_widened(v, cap, widen)
                                .simplified(opt.envelope_tol);
            cand.score = score_env(v, cand.envelope);
            c_sets.add(1);
            list.try_add(std::move(cand));
          } else {
            // Elimination: removing the aggressor's own worst i-set narrows
            // the aggressor window; the removed envelope is the trim of this
            // cap's envelope (the cap itself stays). Reads the aggressor's
            // barrier-published snapshot (see ho_snap above), available when
            // `a`'s level completed before `v`'s this sweep or last sweep.
            const BestSnap& s = ho_snap[a];
            if (!s.valid || s.score <= kShiftEps) continue;
            if (std::binary_search(s.members.begin(), s.members.end(), cap)) continue;
            const wave::Pwl& full_env = builder.envelope(v, cap);
            // Narrowed window: the aggressor's noisy LAT retreats by the
            // reduction; rebuild with a negative extension via the base
            // (noiseless-LAT) envelope widened by the remaining noise.
            const wave::Pwl narrowed =
                builder.envelope_widened(v, cap, -s.score)
                    .simplified(opt.envelope_tol);
            wave::Pwl diff = full_env.minus(narrowed).clamped(0.0, vdd);
            if (diff.peak() <= 1e-9) continue;
            CandidateSet cand;
            cand.members = s.members;
            cand.envelope = diff.simplified(opt.envelope_tol);
            cand.score = score_env(v, cand.envelope);
            c_sets.add(1);
            list.try_add(std::move(cand));
          }
        }
      }

      // Step 4: reduce to the irredundant list. The victim's own caps are
      // passed so each keeps an extension seed (see IList::reduce).
      list.reduce(iv[v], opt.dominance_tol, opt.beam_cap, opt.use_dominance,
                  prune_out, active_caps[v]);
      h_ilist.observe(static_cast<double>(list.size()));
      *max_list_out = std::max(*max_list_out, list.size());

      // Step 5: record the per-victim winner of this cardinality.
      if (!list.empty()) {
        const CandidateSet& best = list.best();
        winner_score[v][i] = best.score;
        winner_members[v][i] = best.members;
      }
    };

    for (int sweep = 0; sweep < sweeps; ++sweep) {
      for (size_t lvl = 0; lvl < wavefront.num_levels(); ++lvl) {
        const std::span<const net::NetId> batch = wavefront.level(lvl);
        std::vector<PruneStats> batch_prune(batch.size());
        std::vector<size_t> batch_max(batch.size(), 0);
        runtime::parallel_for(threads, 0, batch.size(), [&](size_t bi) {
          process_victim(batch[bi], i, sweep, &batch_prune[bi], &batch_max[bi]);
        });
        // Deterministic reductions on the calling thread, in index order.
        for (size_t bi = 0; bi < batch.size(); ++bi) {
          result.stats.prune.considered += batch_prune[bi].considered;
          result.stats.prune.removed_dominated += batch_prune[bi].removed_dominated;
          result.stats.prune.removed_beam += batch_prune[bi].removed_beam;
          result.stats.max_list_size =
              std::max(result.stats.max_list_size, batch_max[bi]);
        }
        // Publish this level's winners for elimination's higher-order reads.
        if (!addition) {
          for (net::NetId v : batch) {
            BestSnap& s = ho_snap[v];
            if (cur[v].empty()) {
              s.valid = false;
              continue;
            }
            s.valid = true;
            s.score = cur[v].best().score;
            s.members = cur[v].best().members;
          }
        }
      }
    }

    // Sink selection for cardinality i.
    constexpr size_t kFinalists = 6;
    double best_delay = addition ? -std::numeric_limits<double>::infinity()
                                 : std::numeric_limits<double>::infinity();
    std::vector<layout::CapId> best_set;
    std::vector<std::vector<layout::CapId>> finalists;
    double circuit_floor = 0.0;  // arrival of POs unaffected by the set
    for (net::NetId p : sinks) circuit_floor = std::max(circuit_floor, windows[p].lat);

    if (addition) {
      std::vector<std::pair<double, const CandidateSet*>> ranked;
      for (net::NetId p : sinks) {
        // A PO's best set of any cardinality j <= i is a valid exactly-i
        // choice once padded (see pad_to above); lower-j winners matter
        // when the PO's cone runs out of distinct couplings.
        for (size_t j = 1; j <= i; ++j) {
          if (winner_score[p][j] < 0.0) continue;
          const double arrival = windows[p].lat + winner_score[p][j];
          if (arrival > best_delay) {
            best_delay = arrival;
            best_set = winner_members[p][j];
          }
        }
        if (cur[p].empty()) continue;
        const CandidateSet& s = cur[p].best();
        ranked.emplace_back(windows[p].lat + s.score, &s);
      }
      if (!opt.use_pseudo) {
        // Flat fallback: local noise assumed to propagate unclamped along
        // the victim's worst path (arrival = max_lat - slack + dn).
        for (net::NetId v = 0; v < num_nets; ++v) {
          if (cur[v].empty() || !std::isfinite(base_slack[v])) continue;
          const CandidateSet& s = cur[v].best();
          const double arrival = circuit_floor - base_slack[v] + s.score;
          ranked.emplace_back(arrival, &s);
          if (arrival > best_delay) {
            best_delay = arrival;
            best_set = s.members;
          }
        }
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      for (const auto& [arrival, s] : ranked) {
        if (finalists.size() >= kFinalists) break;
        finalists.push_back(s->members);
      }
      if (best_set.empty()) {
        // No cardinality-i set anywhere (tiny design / large i): keep the
        // previous cardinality's choice — a k'-set is a valid k-set choice.
        best_delay = result.estimated_delay_by_k.empty()
                         ? circuit_floor
                         : result.estimated_delay_by_k.back();
        if (!result.set_by_k.empty()) best_set = result.set_by_k.back();
      }
      best_delay = std::max(best_delay, circuit_floor);
    } else {
      // Build the virtual-sink list of cardinality i: single-PO sets plus
      // unions of a lower-cardinality sink set with another PO's set.
      std::vector<SinkSet>& slist = sink_lists[i];
      std::vector<layout::CapId> merged;
      auto push_sink = [&](SinkSet s) {
        s.est_delay = sink_est_delay(s);
        slist.push_back(std::move(s));
      };
      for (net::NetId p : hot_pos) {
        for (const CandidateSet& s : cur[p].sets()) {
          SinkSet ss;
          ss.members = s.members;
          ss.per_po = {{p, std::max(s.score, 0.0)}};
          push_sink(std::move(ss));
        }
      }
      for (size_t j = 1; j < i; ++j) {
        for (const SinkSet& base : sink_lists[j]) {
          for (net::NetId p : hot_pos) {
            bool has_p = false;
            for (const auto& [q, r] : base.per_po) has_p |= (q == p);
            if (has_p) continue;  // same-PO compositions live in cur[p]
            for (const CandidateSet& s : cur[p].sets()) {
              if (s.members.size() != i - j) continue;
              if (!union_disjoint(base.members, s.members, merged)) continue;
              SinkSet ss;
              ss.members = merged;
              ss.per_po = base.per_po;
              ss.per_po.emplace_back(p, std::max(s.score, 0.0));
              push_sink(std::move(ss));
            }
          }
        }
      }
      // Aggregate identical member-sets: one coupling set can reduce
      // several POs at once (every cap has two victim sides), so merge
      // per-PO reductions (max per PO) before scoring.
      std::sort(slist.begin(), slist.end(), [](const SinkSet& a, const SinkSet& b) {
        return a.members < b.members;
      });
      std::vector<SinkSet> merged_list;
      for (SinkSet& s : slist) {
        if (!merged_list.empty() && merged_list.back().members == s.members) {
          SinkSet& dst = merged_list.back();
          for (const auto& [p, r] : s.per_po) {
            bool found = false;
            for (auto& [q, rq] : dst.per_po) {
              if (q == p) {
                rq = std::max(rq, r);
                found = true;
              }
            }
            if (!found) dst.per_po.emplace_back(p, r);
          }
        } else {
          merged_list.push_back(std::move(s));
        }
      }
      for (SinkSet& s : merged_list) s.est_delay = sink_est_delay(s);
      std::sort(merged_list.begin(), merged_list.end(),
                [](const SinkSet& a, const SinkSet& b) {
                  if (a.est_delay != b.est_delay) return a.est_delay < b.est_delay;
                  return a.members < b.members;
                });
      if (merged_list.size() > kSinkBeam) merged_list.resize(kSinkBeam);
      slist = std::move(merged_list);
      if (!slist.empty()) {
        best_delay = slist.front().est_delay;
        best_set = slist.front().members;
        for (const SinkSet& s : slist) {
          if (finalists.size() >= kFinalists) break;
          finalists.push_back(s.members);
        }
        // Removing one more coupling never hurts: keep the curve monotone
        // when the exact-cardinality list happens to be worse than a
        // lower-cardinality choice.
        if (!result.estimated_delay_by_k.empty() &&
            result.estimated_delay_by_k.back() < best_delay) {
          best_delay = result.estimated_delay_by_k.back();
          best_set = result.set_by_k.back();
        }
      } else {
        best_delay = result.estimated_delay_by_k.empty()
                         ? circuit_floor
                         : result.estimated_delay_by_k.back();
        if (!result.set_by_k.empty()) best_set = result.set_by_k.back();
      }
    }
    result.set_by_k.push_back(pad_to(std::move(best_set), i));
    result.estimated_delay_by_k.push_back(best_delay);
    result.finalists_by_k.push_back(std::move(finalists));
    const std::int64_t now = obs::now_ns();
    result.stats.runtime_by_k.push_back(obs::ns_to_seconds(now - run_start_ns));
    reg.gauge(str::format("topk.cardinality_runtime_s.k%zu", i))
        .set(obs::ns_to_seconds(now - card_start_ns));
    if (log::enabled(log::Level::kDebug)) {
      log::debug() << "topk: cardinality " << i << " done in "
                   << obs::ns_to_seconds(now - card_start_ns) << " s, best delay "
                   << best_delay;
    }

    // Shift layers: cur becomes prev.
    for (net::NetId v = 0; v < num_nets; ++v) {
      prev[v].assign(cur[v].sets().begin(), cur[v].sets().end());
    }
  }

  result.members = result.set_by_k.back();
  result.estimated_delay = result.estimated_delay_by_k.back();
  result.evaluated_delay = result.estimated_delay;
  if (opt.reevaluate && !result.members.empty()) {
    obs::ScopedSpan reevaluate_span("topk.reevaluate");
    result.evaluated_delay = evaluate_set(result.members, opt.mode, iter_opt);
    if (opt.rerank_top > 0) {
      // Exact re-ranking: the estimator is first-order (it does not re-run
      // the window fixpoint per candidate), so evaluate the best few
      // final-cardinality candidates across all sinks and keep the true
      // optimum.
      std::vector<const std::vector<layout::CapId>*> finalists;
      if (addition) {
        std::vector<const CandidateSet*> cands;
        for (net::NetId p : sinks) {
          size_t taken = 0;
          for (const CandidateSet& s : prev[p]) {  // prev now holds I-list_k
            if (s.members.empty() || s.members == result.members) continue;
            cands.push_back(&s);
            if (++taken >= opt.rerank_top) break;
          }
        }
        std::sort(cands.begin(), cands.end(),
                  [](const CandidateSet* a, const CandidateSet* b) {
                    return a->score > b->score;
                  });
        if (cands.size() > opt.rerank_top) cands.resize(opt.rerank_top);
        for (const CandidateSet* s : cands) finalists.push_back(&s->members);
      } else {
        // Sink lists are already sorted best-first.
        for (const SinkSet& s : sink_lists[k]) {
          if (s.members == result.members) continue;
          finalists.push_back(&s.members);
          if (finalists.size() >= opt.rerank_top) break;
        }
      }
      // Evaluate finalists in parallel (each fixpoint serial to avoid
      // oversubscription), then pick the winner in index order so the
      // strict-better / first-wins tie-breaking matches the serial loop.
      noise::IterativeOptions finalist_opt = iter_opt;
      finalist_opt.threads = 1;
      std::vector<double> finalist_delay(finalists.size(), 0.0);
      runtime::parallel_for(threads, 0, finalists.size(), [&](size_t fi) {
        finalist_delay[fi] = evaluate_set(*finalists[fi], opt.mode, finalist_opt);
      });
      for (size_t fi = 0; fi < finalists.size(); ++fi) {
        const double d = finalist_delay[fi];
        const bool better = addition ? d > result.evaluated_delay
                                     : d < result.evaluated_delay;
        if (better) {
          result.evaluated_delay = d;
          result.members = *finalists[fi];
        }
      }
    }
  }
  result.stats.threads = threads;
  result.stats.runtime_s = obs::ns_to_seconds(obs::now_ns() - run_start_ns);

  // Publish the per-run prune tallies and fill the counter-derived stats
  // fields from the registry (zero when observability is compiled out).
  c_dominance.add(result.stats.prune.removed_dominated);
  c_beam.add(result.stats.prune.removed_beam);
  result.stats.sets_generated = c_sets.value() - sets_before;
  reg.gauge("topk.max_list_size").set(static_cast<double>(result.stats.max_list_size));
  reg.gauge("topk.runtime_s").set(result.stats.runtime_s);

  log::info() << "topk: done in " << result.stats.runtime_s << " s, "
              << result.stats.sets_generated << " sets generated, "
              << result.stats.prune.removed_dominated << " dominance-pruned, "
              << result.stats.prune.removed_beam << " beam-capped, delay "
              << result.baseline_delay << " -> " << result.evaluated_delay;
  return result;
}

}  // namespace tka::topk
