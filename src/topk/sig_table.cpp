#include "topk/sig_table.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "util/assert.hpp"

namespace tka::topk {
namespace {

constexpr int kSamples = wave::EnvelopeSignature::kSamples;

#if defined(__x86_64__)

bool cpu_has_avx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

#endif  // __x86_64__

}  // namespace

SigTable::Prepared SigTable::prepare(const wave::EnvelopeSignature& b,
                                     double tol) {
  TKA_ASSERT(b.valid);
  Prepared p;
  // Term for term the hoistable subexpressions of wave::signature_rejects:
  // gap, gap * (b.hi - b.lo) and b.samples[s] - gap depend only on b and
  // tol, so computing them once per candidate yields bit-identical operands
  // for every pair.
  p.peak_plus_gap_rhs = b.peak;
  p.gap = tol + wave::kSigMargin;
  p.integral = b.integral;
  p.span_gap = p.gap * (b.hi - b.lo);
  for (int s = 0; s < kSamples; ++s) {
    p.samples_gap[s] = b.samples[s] - p.gap;
  }
  return p;
}

void SigTable::push_back(const wave::EnvelopeSignature& sig) {
  TKA_ASSERT(sig.valid);
  if (empty()) {
    lo_ = sig.lo;
    hi_ = sig.hi;
  } else {
    TKA_ASSERT(sig.lo == lo_ && sig.hi == hi_);
  }
  peak_.push_back(sig.peak);
  integral_.push_back(sig.integral);
  samples_.insert(samples_.end(), sig.samples.data(),
                  sig.samples.data() + kSamples);
}

void SigTable::clear() {
  peak_.clear();
  integral_.clear();
  samples_.clear();
}

void SigTable::reserve(std::size_t n) {
  peak_.reserve(n);
  integral_.reserve(n);
  samples_.reserve(n * kSamples);
}

std::size_t SigTable::heap_bytes() const {
  return (peak_.capacity() + integral_.capacity() + samples_.capacity()) *
         sizeof(double);
}

// exists s: a.samples[s] < b.samples[s] - gap, over one entry's contiguous
// 8-double row. Branchless OR of the eight compares — the row is one cache
// line, and a flat reduction lets the compiler keep it in vector registers
// even without the AVX2 path.
bool SigTable::samples_reject(const double* row, const Prepared& b) {
#if defined(__x86_64__)
  if (cpu_has_avx2()) return samples_reject_avx2(row, b);
#endif
  bool rej = false;
  for (int s = 0; s < kSamples; ++s) {
    rej |= row[s] < b.samples_gap[s];
  }
  return rej;
}

#if defined(__x86_64__)

// Two 4-lane ordered (quiet) compares cover the whole grid; _CMP_LT_OQ
// matches the scalar < operator's NaN behaviour exactly, so the decision is
// bit-identical to the scalar loop.
__attribute__((target("avx2"))) bool SigTable::samples_reject_avx2(
    const double* row, const Prepared& b) {
  static_assert(kSamples == 8, "grid sized for two 4-wide compares");
  const __m256d lo = _mm256_cmp_pd(_mm256_loadu_pd(row),
                                   _mm256_loadu_pd(b.samples_gap), _CMP_LT_OQ);
  const __m256d hi =
      _mm256_cmp_pd(_mm256_loadu_pd(row + 4),
                    _mm256_loadu_pd(b.samples_gap + 4), _CMP_LT_OQ);
  return _mm256_movemask_pd(_mm256_or_pd(lo, hi)) != 0;
}

#endif  // __x86_64__

void SigTable::rejects_batch(const wave::EnvelopeSignature& b, double tol,
                             std::uint8_t* flags) const {
  const std::size_t n = size();
  if (n == 0) return;
  TKA_ASSERT(b.lo == lo_ && b.hi == hi_);
  const Prepared prep = prepare(b, tol);
  for (std::size_t j = 0; j < n; ++j) {
    flags[j] = rejects(j, prep) ? 1 : 0;
  }
}

bool SigTable::rejects_one(std::size_t j, const wave::EnvelopeSignature& b,
                           double tol) const {
  wave::EnvelopeSignature a;
  a.valid = true;
  a.lo = lo_;
  a.hi = hi_;
  a.peak = peak_[j];
  a.integral = integral_[j];
  for (int s = 0; s < kSamples; ++s) {
    a.samples[s] = samples_[j * kSamples + s];
  }
  return wave::signature_rejects(a, b, tol);
}

}  // namespace tka::topk
