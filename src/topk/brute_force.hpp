// Brute-force top-k baseline (paper §2, Table 1): enumerate all C(r, k)
// coupling subsets and run the full iterative noise analysis on each. Used
// to validate the engine on small circuits and to reproduce the paper's
// runtime-explosion comparison. A wall-clock timeout mirrors the paper's
// 1800 s cap.
#pragma once

#include <cstddef>

#include <optional>

#include "noise/iterative.hpp"
#include "topk/pseudo_aggressor.hpp"

namespace tka::topk {

/// Controls.
struct BruteForceOptions {
  int k = 2;
  Mode mode = Mode::kAddition;
  double timeout_s = 1800.0;  ///< give up after this much wall time
  /// Worker threads: combinations are evaluated in batches, one fixpoint
  /// per worker, with the winner reduced in enumeration order — so the
  /// reported set and delay are identical for any thread count. 0 = auto
  /// (TKA_THREADS / hardware concurrency), 1 = serial.
  int threads = 0;
  noise::IterativeOptions iterative;
};

/// Outcome.
struct BruteForceResult {
  std::vector<layout::CapId> members;  ///< the optimal set (when completed)
  double delay = 0.0;                  ///< circuit delay with/without the set
  size_t subsets_evaluated = 0;
  double runtime_s = 0.0;
  bool timed_out = false;
};

/// Runs the exhaustive search. Returns nullopt when there are fewer than k
/// nonzero couplings.
std::optional<BruteForceResult> brute_force_topk(
    const net::Netlist& nl, const layout::Parasitics& par,
    const sta::DelayModel& model, const noise::CouplingCalculator& calc,
    const BruteForceOptions& options);

}  // namespace tka::topk
