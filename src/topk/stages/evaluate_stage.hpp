// EvaluateStage: per-cardinality sink selection (single-PO winners in
// addition mode, virtual-sink unions across the hottest POs in elimination
// mode) and the final exact re-evaluation / re-ranking of the finalists.
//
// Serial on the orchestrating thread except the finalist re-evaluation,
// which fans the candidate fixpoints out over the worker pool and reduces
// the winner in index order (strict-better, first wins).
#pragma once

#include <utility>

#include "topk/stages/stage_context.hpp"

namespace tka::topk::stages {

class EvaluateStage {
 public:
  /// Binds one query; derives the hot-PO list from the current windows.
  explicit EvaluateStage(QueryContext* ctx);

  /// Sink selection for cardinality i: appends the winning set, its
  /// estimated delay and the finalist runners-up to the result trail.
  void select(std::size_t i);

  /// Exact re-evaluation of the chosen set plus up to rerank_top finalists.
  void finalize();

 private:
  // Virtual-sink candidate (elimination): per-PO reduction contributions,
  // combined across the worst few POs (the paper's single "sink node",
  // generalized).
  struct SinkSet {
    std::vector<layout::CapId> members;
    std::vector<std::pair<net::NetId, double>> per_po;  // reduction at PO
    double est_delay = 0.0;
  };
  static constexpr std::size_t kSinkPoLimit = 8;
  static constexpr std::size_t kSinkBeam = 64;
  static constexpr std::size_t kFinalists = 6;

  double sink_est_delay(const SinkSet& s) const;
  std::vector<layout::CapId> pad_to(std::vector<layout::CapId> members,
                                    std::size_t card) const;

  QueryContext* ctx_;
  std::vector<net::NetId> hot_pos_;
  std::vector<std::vector<SinkSet>> sink_lists_;  // [cardinality]
};

}  // namespace tka::topk::stages
