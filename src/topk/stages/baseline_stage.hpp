// BaselineStage: the fixpoints and every per-victim derived quantity the
// enumeration stages read (windows, envelopes, active coupling lists,
// dominance intervals, slack gates).
//
// prime() builds the whole state cold — counter-for-counter identical to
// the setup the monolithic engine used to run. refresh() re-converges the
// fixpoint incrementally after a design edit, recomputes only the derived
// entries inside the edit's influence region, and reports the victims whose
// enumeration inputs changed so the session can scope the remaining stages
// to the affected fanout cone.
#pragma once

#include <span>

#include "topk/stages/stage_context.hpp"

namespace tka::topk::stages {

class BaselineStage {
 public:
  /// Circuit delay with exactly `members` coupled (addition) or `members`
  /// removed from the full set (elimination), via the iterative fixpoint.
  /// The single source of truth for set evaluation: the engine, the brute
  /// force reference and the benches all call this.
  static double masked_delay(const DesignRef& design,
                             std::span<const layout::CapId> members, Mode mode,
                             const noise::IterativeOptions& iterative);

  /// Cold build of the full baseline state.
  static void prime(const DesignRef& design, const TopkOptions& opt,
                    const noise::IterativeOptions& iter_opt,
                    BaselineState* state);

  /// Incremental rebuild after a design edit. `edit_nets` are nets whose
  /// local electrical inputs changed (driver resize endpoints, coupling
  /// endpoints); `edit_caps` are the edited couplings. Appends to *seeds
  /// every net whose enumeration inputs changed (the session closes this
  /// set over fanout and coupling edges). Requires a primed state.
  static void refresh(const DesignRef& design, const TopkOptions& opt,
                      const noise::IterativeOptions& iter_opt,
                      std::span<const net::NetId> edit_nets,
                      std::span<const layout::CapId> edit_caps,
                      BaselineState* state, std::vector<net::NetId>* seeds);

 private:
  // Shared by prime (baseline_stage.cpp) and refresh (baseline_refresh.cpp).
  static void derive_victim(const DesignRef& design, const TopkOptions& opt,
                            BaselineState* state, net::NetId v);
  static void build_active_caps(const DesignRef& design, const TopkOptions& opt,
                                BaselineState* state, net::NetId v,
                                std::vector<layout::CapId>* out);
  static void truncate_active(const DesignRef& design, const TopkOptions& opt,
                              std::vector<layout::CapId>* caps);
  static void propagate_ub(const DesignRef& design, BaselineState* state);
  static void rebuild_intervals(BaselineState* state);
  static void rebuild_caps_by_size(const DesignRef& design,
                                   BaselineState* state);
};

}  // namespace tka::topk::stages
