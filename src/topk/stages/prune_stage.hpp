// PruneStage: reduces a victim's generated candidates to the irredundant
// list (dominance pruning + beam cap), records the per-victim winner trail,
// and publishes the level-barrier snapshots elimination's higher-order
// atoms read.
#pragma once

#include <span>

#include "topk/stages/stage_context.hpp"

namespace tka::topk::stages {

class PruneStage {
 public:
  /// Step 4+5 for one victim: reduce the live list, record list-size
  /// telemetry and the cardinality-i winner. Parallel-safe per level.
  static void reduce(const QueryContext& ctx, net::NetId v, std::size_t i,
                     PruneStats* prune_out, std::size_t* max_list_out);

  /// Elimination only: snapshots a dirty victim's sweep-0 list for the next
  /// query and publishes its current winner into ctx.ho_snap (the current-
  /// sweep buffer) for higher-order reads. Writes only victim-owned slots,
  /// so the task-graph sweep fuses it onto the end of each victim's task —
  /// an a -> v edge guarantees `a`'s publication precedes any current-sweep
  /// read by `v`.
  static void publish_one(const QueryContext& ctx, net::NetId v,
                          std::size_t i, int sweep);

  /// Elimination only, called at each level barrier of the level-loop path
  /// with the FULL level (clean victims included): publish_one over the
  /// level. Serial, on the orchestrating thread.
  static void publish(const QueryContext& ctx,
                      std::span<const net::NetId> level, std::size_t i,
                      int sweep);
};

}  // namespace tka::topk::stages
