// PruneStage: reduces a victim's generated candidates to the irredundant
// list (dominance pruning + beam cap), records the per-victim winner trail,
// and publishes the level-barrier snapshots elimination's higher-order
// atoms read.
#pragma once

#include <span>

#include "topk/stages/stage_context.hpp"

namespace tka::topk::stages {

class PruneStage {
 public:
  /// Step 4+5 for one victim: reduce the live list, record list-size
  /// telemetry and the cardinality-i winner. Parallel-safe per level.
  static void reduce(const QueryContext& ctx, net::NetId v, std::size_t i,
                     PruneStats* prune_out, std::size_t* max_list_out);

  /// Elimination only, called at each level barrier with the FULL level
  /// (clean victims included): snapshots dirty victims' sweep-0 lists for
  /// the next query and publishes every victim's current winner for
  /// higher-order reads. Serial, on the orchestrating thread.
  static void publish(const QueryContext& ctx,
                      std::span<const net::NetId> level, std::size_t i,
                      int sweep);
};

}  // namespace tka::topk::stages
