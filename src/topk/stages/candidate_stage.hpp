// CandidateStage: builds one victim's cardinality-i candidate list from
//   1. one-more-primary extensions of its I-list_{i-1},
//   2. pseudo input aggressors propagated from fanins (including the
//      reconvergent joint reductions and balanced two-fanin unions of
//      elimination mode),
//   3. higher-order aggressors (windows widened/narrowed by the coupled
//      net's own winner set).
// Pure generation: the reduction to the irredundant list is PruneStage's.
#pragma once

#include "topk/stages/stage_context.hpp"

namespace tka::topk::stages {

class CandidateStage {
 public:
  /// Appends this (victim, cardinality, sweep)'s candidates to the victim's
  /// live list (cleared first on sweep 0). Safe to run for a whole level in
  /// parallel: all cross-victim reads are of completed lower levels or of
  /// barrier-published snapshots, every write lands in the victim's slot.
  static void generate(const QueryContext& ctx, net::NetId v, std::size_t i,
                       int sweep);

  /// Mode-uniform candidate score: larger is "more impactful".
  static double score_env(const QueryContext& ctx, net::NetId v,
                          const wave::Pwl& env);
};

}  // namespace tka::topk::stages
