// BaselineStage::refresh — the incremental half of the baseline stage
// (prime lives in baseline_stage.cpp): re-converge the recorded fixpoint
// over an edit's cone, re-derive only the influence region's per-victim
// state, and report the seed victims whose enumeration inputs moved.
#include "topk/stages/baseline_stage.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "sta/critical_path.hpp"
#include "util/assert.hpp"

namespace tka::topk::stages {

void BaselineStage::refresh(const DesignRef& design, const TopkOptions& opt,
                            const noise::IterativeOptions& iter_opt,
                            std::span<const net::NetId> edit_nets,
                            std::span<const layout::CapId> edit_caps,
                            BaselineState* state,
                            std::vector<net::NetId>* seeds) {
  (void)iter_opt;
  TKA_CHECK(state->fixpoint && state->fixpoint->primed(),
            "BaselineStage::refresh requires a primed state");
  const net::Netlist& nl = *design.nl;
  const layout::Parasitics& par = *design.par;
  const std::size_t num_nets = nl.num_nets();
  const noise::CouplingMask mask_all =
      noise::CouplingMask::all(par.num_couplings());
  obs::ScopedSpan span("topk.baseline_refresh");
  obs::registry().counter("topk.baseline_refreshes").add(1);

  state->fixpoint->refresh(edit_nets, edit_caps, mask_all);
  const noise::NoiseReport& all_rep = state->fixpoint->report();
  const std::vector<net::NetId>& changed = state->addition
                                               ? state->fixpoint->changed_noiseless()
                                               : state->fixpoint->changed_noisy();

  // Touched = edited nets, edited-cap endpoints, and every net whose
  // mode-selected window (or local noise bump) moved.
  std::vector<char> flag(num_nets, 0);
  std::vector<net::NetId> touched;
  auto touch = [&](net::NetId n) {
    if (!flag[n]) {
      flag[n] = 1;
      touched.push_back(n);
    }
  };
  for (net::NetId n : edit_nets) touch(n);
  for (layout::CapId cap : edit_caps) {
    touch(par.coupling(cap).net_a);
    touch(par.coupling(cap).net_b);
  }
  for (net::NetId n : changed) touch(n);
  std::sort(touched.begin(), touched.end());

  // Drop stale envelope-cache entries before anything re-reads them.
  for (net::NetId n : touched) state->builder->invalidate_net(n);
  for (layout::CapId cap : edit_caps) state->builder->invalidate_cap(cap);

  // Influence region R = touched ∪ coupled(touched): a victim's envelopes,
  // active list, upper bound and total envelope can all move when one of
  // its aggressors did.
  std::vector<char> in_region = flag;
  std::vector<net::NetId> region = touched;
  for (net::NetId n : touched) {
    for (layout::CapId cap : par.couplings_of(n)) {
      const net::NetId o = par.coupling(cap).other(n);
      if (!in_region[o]) {
        in_region[o] = 1;
        region.push_back(o);
      }
    }
  }
  std::sort(region.begin(), region.end());
  obs::registry().counter("topk.baseline_refresh_region").add(region.size());

  if (state->filter) {
    state->filter->refresh(region, *state->analyzer, *state->builder);
  }

  std::vector<layout::CapId> caps;
  for (net::NetId v : region) {
    build_active_caps(design, opt, state, v, &caps);
    state->active_caps[v] = caps;
    derive_victim(design, opt, state, v);
    state->local_ub[v] =
        state->analyzer->delay_noise_upper_bound(v, *state->builder, mask_all);
  }
  // cum_ub and the intervals are cheap arithmetic over stored local bounds;
  // rebuild them wholesale, then seed every net whose dominance interval
  // actually moved — cum_ub accumulates down all fanout paths, so interval
  // shifts can land arbitrarily far beyond R.
  const std::vector<wave::DominanceInterval> old_iv = state->iv;
  propagate_ub(design, state);
  rebuild_intervals(state);
  std::vector<net::NetId> iv_changed;
  for (net::NetId v = 0; v < num_nets; ++v) {
    if (state->iv[v].lo != old_iv[v].lo || state->iv[v].hi != old_iv[v].hi) {
      iv_changed.push_back(v);
    }
  }

  // Slack gate / fallback estimates: recompute and seed the flips (required
  // times flow backward from the POs, so a flip can land outside R's
  // forward cone).
  std::vector<net::NetId> flips;
  if (std::isfinite(opt.victim_slack_threshold) || !opt.use_pseudo) {
    const sta::StaResult base_sta =
        sta::run_sta(nl, *design.model, opt.iterative.sta);
    state->base_slack = sta::net_slacks(nl, base_sta);
    if (std::isfinite(opt.victim_slack_threshold)) {
      for (net::NetId v = 0; v < num_nets; ++v) {
        const char now = state->base_slack[v] <= opt.victim_slack_threshold ? 1 : 0;
        if (now != state->full_victim[v]) {
          state->full_victim[v] = now;
          flips.push_back(v);
        }
      }
    }
  }

  rebuild_caps_by_size(design, state);
  state->sinks = nl.primary_outputs();
  if (state->sinks.empty()) state->sinks.push_back(all_rep.worst_po);

  // Seed set: every victim whose enumeration inputs moved. Pseudo
  // propagation reads the fanin nets' arrival windows directly, so a
  // touched net also dirties the gate outputs it feeds.
  seeds->insert(seeds->end(), region.begin(), region.end());
  for (net::NetId n : touched) {
    for (const net::PinRef& pin : nl.net(n).fanouts) {
      seeds->push_back(nl.gate(pin.gate).output);
    }
  }
  seeds->insert(seeds->end(), iv_changed.begin(), iv_changed.end());
  seeds->insert(seeds->end(), flips.begin(), flips.end());
  std::sort(seeds->begin(), seeds->end());
  seeds->erase(std::unique(seeds->begin(), seeds->end()), seeds->end());
}

}  // namespace tka::topk::stages
