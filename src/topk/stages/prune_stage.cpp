#include "topk/stages/prune_stage.hpp"

#include <algorithm>

namespace tka::topk::stages {

void PruneStage::reduce(const QueryContext& ctx, net::NetId v, std::size_t i,
                        PruneStats* prune_out, std::size_t* max_list_out) {
  const TopkOptions& opt = *ctx.opt;
  IList& list = ctx.memo->lists[i - 1][v];

  // Step 4: reduce to the irredundant list. The victim's own caps are
  // passed so each keeps an extension seed (see IList::reduce). Candidates
  // arrive with envelope signatures over iv[v] already attached
  // (CandidateStage), so the dominance pass inside reduce() settles most
  // pairs with the signature pre-filter.
  list.reduce(ctx.base->iv[v], opt.dominance_tol, opt.beam_cap,
              opt.use_dominance, prune_out, ctx.base->active_caps[v]);
  ctx.h_ilist->observe(static_cast<double>(list.size()));
  ctx.c_surviving->add(list.size());
  *max_list_out = std::max(*max_list_out, list.size());

  // Step 5: record the per-victim winner of this cardinality.
  if (!list.empty()) {
    const CandidateSet& best = list.best();
    ctx.memo->winner_score[v][i] = best.score;
    ctx.memo->winner_members[v][i] = best.members;
  }
}

void PruneStage::publish_one(const QueryContext& ctx, net::NetId v,
                             std::size_t i, int sweep) {
  SweepMemo& memo = *ctx.memo;
  // Snapshot a dirty victim's end-of-sweep-0 list so the *next* query's
  // dirty victims can replay their sweep-0 reads of this (then clean)
  // fanin exactly.
  if (sweep == 0 && memo.retain && ctx.is_dirty(v)) {
    const std::span<const CandidateSet> live = memo.lists[i - 1][v].sets();
    memo.sweep0[i - 1][v].assign(live.begin(), live.end());
  }
  // Publish the victim's winner for elimination's higher-order reads.
  // Clean victims expose their memoized state for this sweep (sets_of).
  const std::span<const CandidateSet> view = ctx.sets_of(v, i, sweep);
  BestSnap& s = (*ctx.ho_snap)[v];
  if (view.empty()) {
    s.valid = false;
    return;
  }
  const CandidateSet* best = best_of(view);
  s.valid = true;
  s.score = best->score;
  s.members = best->members;
}

void PruneStage::publish(const QueryContext& ctx,
                         std::span<const net::NetId> level, std::size_t i,
                         int sweep) {
  for (net::NetId v : level) publish_one(ctx, v, i, sweep);
}

}  // namespace tka::topk::stages
