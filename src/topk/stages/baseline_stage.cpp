#include "topk/stages/baseline_stage.hpp"

#include <algorithm>
#include <cmath>

#include "net/topo.hpp"
#include "obs/obs.hpp"
#include "sta/critical_path.hpp"
#include "util/assert.hpp"

namespace tka::topk::stages {

double BaselineStage::masked_delay(const DesignRef& design,
                                   std::span<const layout::CapId> members,
                                   Mode mode,
                                   const noise::IterativeOptions& iterative) {
  const bool addition = (mode == Mode::kAddition);
  noise::CouplingMask mask =
      addition ? noise::CouplingMask::none(design.par->num_couplings())
               : noise::CouplingMask::all(design.par->num_couplings());
  for (layout::CapId id : members) mask.set(id, addition);
  const noise::NoiseReport report = noise::analyze_iterative(
      *design.nl, *design.par, *design.model, *design.calc, mask, iterative);
  return report.noisy_delay;
}

void BaselineStage::build_active_caps(const DesignRef& design,
                                      const TopkOptions& opt,
                                      BaselineState* state, net::NetId v,
                                      std::vector<layout::CapId>* out) {
  out->clear();
  for (layout::CapId id : design.par->couplings_of(v)) {
    if (design.par->coupling(id).cap_pf <= 0.0) continue;
    if (state->filter && state->filter->is_false(v, id)) continue;
    out->push_back(id);
  }
  truncate_active(design, opt, out);
}

void BaselineStage::truncate_active(const DesignRef& design,
                                    const TopkOptions& opt,
                                    std::vector<layout::CapId>* caps) {
  if (opt.max_primary_per_victim == 0 ||
      caps->size() <= opt.max_primary_per_victim) {
    return;
  }
  std::sort(caps->begin(), caps->end(), [&](layout::CapId a, layout::CapId b) {
    return design.par->coupling(a).cap_pf > design.par->coupling(b).cap_pf;
  });
  caps->resize(opt.max_primary_per_victim);
  std::sort(caps->begin(), caps->end());
}

void BaselineStage::derive_victim(const DesignRef& design,
                                  const TopkOptions& opt, BaselineState* state,
                                  net::NetId v) {
  const sta::WindowTable& windows = *state->windows;
  const noise::NoiseReport& all_rep = state->fixpoint->report();
  state->vic_t50[v] = state->addition
                          ? windows[v].lat
                          : windows[v].lat - all_rep.delay_noise[v];
  const double trans = std::max(windows[v].trans_late, 1e-4);
  state->vic_wave[v] =
      wave::make_rising_ramp(state->vic_t50[v], trans, state->vdd);
  if (!state->addition && !state->active_caps[v].empty()) {
    std::vector<const wave::Pwl*> terms;
    for (layout::CapId id : state->active_caps[v]) {
      const wave::Pwl& e = state->builder->envelope(v, id);
      if (!e.empty()) terms.push_back(&e);
    }
    state->total_env[v] = wave::Pwl::sum(terms).simplified(opt.envelope_tol);
    state->dn_total[v] = noise::delay_noise(state->vic_wave[v],
                                            state->total_env[v], state->vdd,
                                            state->vic_t50[v]);
  } else {
    state->total_env[v] = wave::Pwl();
    state->dn_total[v] = 0.0;
  }
}

// cum_ub accumulates each net's local upper bound down every path so pseudo
// envelopes are also covered by the dominance interval.
void BaselineStage::propagate_ub(const DesignRef& design, BaselineState* state) {
  for (net::NetId v : state->topo) {
    const net::Net& n = design.nl->net(v);
    double fanin_ub = 0.0;
    if (n.driver != net::kInvalidGate) {
      for (net::NetId in : design.nl->gate(n.driver).inputs) {
        fanin_ub = std::max(fanin_ub, state->cum_ub[in]);
      }
    }
    state->cum_ub[v] = state->local_ub[v] + fanin_ub;
  }
}

void BaselineStage::rebuild_intervals(BaselineState* state) {
  const std::size_t num_nets = state->iv.size();
  for (net::NetId v = 0; v < num_nets; ++v) {
    state->iv[v] = {state->vic_t50[v], state->vic_t50[v] + state->cum_ub[v] + 1e-6};
  }
}

void BaselineStage::rebuild_caps_by_size(const DesignRef& design,
                                         BaselineState* state) {
  state->caps_by_size.clear();
  for (layout::CapId id = 0; id < design.par->num_couplings(); ++id) {
    if (design.par->coupling(id).cap_pf > 0.0) state->caps_by_size.push_back(id);
  }
  std::sort(state->caps_by_size.begin(), state->caps_by_size.end(),
            [&](layout::CapId a, layout::CapId b) {
              return design.par->coupling(a).cap_pf >
                     design.par->coupling(b).cap_pf;
            });
}

void BaselineStage::prime(const DesignRef& design, const TopkOptions& opt,
                          const noise::IterativeOptions& iter_opt,
                          BaselineState* state) {
  const net::Netlist& nl = *design.nl;
  const layout::Parasitics& par = *design.par;
  const std::size_t num_nets = nl.num_nets();
  const std::size_t num_caps = par.num_couplings();
  const noise::CouplingMask mask_all = noise::CouplingMask::all(num_caps);

  state->addition = (opt.mode == Mode::kAddition);
  state->analyzer =
      std::make_unique<noise::NoiseAnalyzer>(nl, par, *design.model);
  state->vdd = state->analyzer->vdd();

  // The all-aggressor fixpoint is always computed: it is the elimination
  // starting point and the addition reference. recompute() records the
  // trajectory refresh() later replays.
  state->fixpoint = std::make_unique<noise::IncrementalFixpoint>(
      nl, par, *design.model, *design.calc, iter_opt);
  {
    obs::ScopedSpan baseline_span("topk.baseline");
    state->fixpoint->recompute(mask_all);
  }
  const noise::NoiseReport& all_rep = state->fixpoint->report();
  state->windows =
      state->addition ? &all_rep.noiseless_windows : &all_rep.noisy_windows;
  state->builder = std::make_unique<noise::EnvelopeBuilder>(
      nl, par, *design.calc, *state->windows);

  // False-aggressor prefilter and the per-victim active coupling lists.
  if (opt.use_filter) {
    state->filter = std::make_unique<noise::AggressorFilter>(
        nl, par, *state->analyzer, *state->builder, opt.filter);
  }
  state->active_caps.assign(num_nets, {});
  for (layout::CapId id = 0; id < num_caps; ++id) {
    const layout::CouplingCap& cc = par.coupling(id);
    if (cc.cap_pf <= 0.0) continue;
    for (const net::NetId v : {cc.net_a, cc.net_b}) {
      if (state->filter && state->filter->is_false(v, id)) continue;
      state->active_caps[v].push_back(id);
    }
  }
  if (opt.max_primary_per_victim > 0) {
    for (auto& caps : state->active_caps) truncate_active(design, opt, &caps);
  }

  // Victim transitions and (elimination) total envelopes.
  state->vic_t50.assign(num_nets, 0.0);
  state->vic_wave.assign(num_nets, {});
  state->total_env.assign(num_nets, {});
  state->dn_total.assign(num_nets, 0.0);
  for (net::NetId v = 0; v < num_nets; ++v) derive_victim(design, opt, state, v);

  // Dominance intervals with propagated upper bounds.
  state->topo = net::topological_nets(nl);
  state->local_ub.assign(num_nets, 0.0);
  state->cum_ub.assign(num_nets, 0.0);
  for (net::NetId v : state->topo) {
    state->local_ub[v] =
        state->analyzer->delay_noise_upper_bound(v, *state->builder, mask_all);
  }
  propagate_ub(design, state);
  state->iv.assign(num_nets, {});
  rebuild_intervals(state);

  // Victim restriction by slack (primaries only; pseudo always propagates).
  // Slacks are also the fallback sink estimate when pseudo propagation is
  // disabled.
  state->full_victim.assign(num_nets, 1);
  state->base_slack.clear();
  if (std::isfinite(opt.victim_slack_threshold) || !opt.use_pseudo) {
    const sta::StaResult base_sta =
        sta::run_sta(nl, *design.model, opt.iterative.sta);
    state->base_slack = sta::net_slacks(nl, base_sta);
    if (std::isfinite(opt.victim_slack_threshold)) {
      for (net::NetId v = 0; v < num_nets; ++v) {
        state->full_victim[v] =
            state->base_slack[v] <= opt.victim_slack_threshold ? 1 : 0;
      }
    }
  }

  rebuild_caps_by_size(design, state);
  state->sinks = nl.primary_outputs();
  if (state->sinks.empty()) state->sinks.push_back(all_rep.worst_po);
}

}  // namespace tka::topk::stages
