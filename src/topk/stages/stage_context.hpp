// Shared state of the staged top-k pipeline (docs/ARCHITECTURE.md).
//
// A query runs four stages over one QueryContext:
//   BaselineStage  — STA + noiseless/noisy fixpoints and every per-victim
//                    derived quantity (windows, envelopes, intervals).
//   CandidateStage — primary extensions, pseudo propagation and the
//                    higher-order widening atoms for one victim.
//   PruneStage     — dominance + beam reduction, winner recording and the
//                    level-barrier snapshot publication.
//   EvaluateStage  — sink selection per cardinality and the final exact
//                    re-evaluation / re-ranking.
//
// The structs here are owned by session::AnalysisSession and persist across
// queries: a what-if query re-runs the stages only over the victims whose
// inputs changed (change-driven — a rebuilt list that comes out identical
// stops the dirtiness wave), reading every clean victim's memoized lists.
// A cold query is the degenerate case where everything is rebuilt.
#pragma once

#include <cstddef>

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "noise/aggressor_filter.hpp"
#include "noise/incremental_fixpoint.hpp"
#include "obs/metrics.hpp"
#include "topk/irredundant_list.hpp"
#include "topk/topk_engine.hpp"

namespace tka::topk::stages {

/// The analyzed design, by reference. The session guarantees these outlive
/// every stage call.
struct DesignRef {
  const net::Netlist* nl = nullptr;
  const layout::Parasitics* par = nullptr;
  const sta::DelayModel* model = nullptr;
  const noise::CouplingCalculator* calc = nullptr;
};

/// Everything BaselineStage derives from the fixpoints, persisted across
/// queries. refresh() updates only the entries an edit actually moved.
struct BaselineState {
  bool addition = true;
  double vdd = 0.0;

  /// The mask=all fixpoint (elimination start / addition reference), with
  /// its recorded trajectory for incremental re-convergence.
  std::unique_ptr<noise::IncrementalFixpoint> fixpoint;
  std::unique_ptr<noise::NoiseAnalyzer> analyzer;
  /// Envelope cache over `windows`; survives refresh() so only invalidated
  /// entries rebuild.
  std::unique_ptr<noise::EnvelopeBuilder> builder;
  std::unique_ptr<noise::AggressorFilter> filter;

  /// Mode-selected window view into the fixpoint report (noiseless for
  /// addition, noisy for elimination). Stable across refresh().
  const sta::WindowTable* windows = nullptr;

  std::vector<std::vector<layout::CapId>> active_caps;  // per victim
  std::vector<double> vic_t50;
  std::vector<wave::Pwl> vic_wave;
  std::vector<wave::Pwl> total_env;  // elimination only
  std::vector<double> dn_total;      // elimination only
  std::vector<double> local_ub;      // per-net delay-noise upper bound
  std::vector<double> cum_ub;        // path-accumulated upper bound
  std::vector<wave::DominanceInterval> iv;
  std::vector<char> full_victim;
  std::vector<double> base_slack;  // only when the slack gate / fallback is on
  std::vector<net::NetId> topo;
  std::vector<layout::CapId> caps_by_size;  // descending cap_pf, for padding
  std::vector<net::NetId> sinks;
};

/// Memoized enumeration state per (cardinality, victim), persisted across
/// queries. The lists ARE the live working storage: a query's CandidateStage
/// clears and rebuilds exactly the dirty victims' lists, so after any query
/// the memo equals what a cold run on the current design would have built.
struct SweepMemo {
  std::size_t k = 0;
  /// Keep all cardinality layers alive after the query (required for
  /// what_if). When false the orchestrator frees layer i-1 once cardinality
  /// i+1 completes, matching the two-layer memory of a one-shot run.
  bool retain = true;
  std::vector<std::vector<IList>> lists;  // [cardinality-1][net]
  /// Elimination only (retain mode): each dirty victim's list contents at
  /// the end of sweep 0, so the next query's dirty victims can replay their
  /// sweep-0 reads of clean fanins exactly.
  std::vector<std::vector<std::vector<CandidateSet>>> sweep0;
  std::vector<std::vector<double>> winner_score;  // [net][cardinality]
  std::vector<std::vector<std::vector<layout::CapId>>> winner_members;
};

/// Barrier-published per-net winner snapshot (elimination higher-order
/// reads). Reset per cardinality, published per level.
struct BestSnap {
  bool valid = false;
  double score = -1.0;
  std::vector<layout::CapId> members;
};

/// IList::best() over a snapshot vector: strictly-greater scan, first wins
/// on ties — byte-for-byte the same tie-breaking as the live list.
inline const CandidateSet* best_of(std::span<const CandidateSet> sets) {
  const CandidateSet* best = &sets.front();
  for (const CandidateSet& s : sets) {
    if (s.score > best->score) best = &s;
  }
  return best;
}

/// One query's view over the session state, threaded through every stage.
struct QueryContext {
  DesignRef design;
  const TopkOptions* opt = nullptr;
  noise::IterativeOptions iter_opt;  // threads resolved
  int threads = 1;
  std::size_t k = 0;
  bool addition = true;

  BaselineState* base = nullptr;
  SweepMemo* memo = nullptr;
  /// Warm queries point this at the session's per-cardinality "rebuilt at
  /// sweep 0" table (reset each cardinality, set when a victim enters the
  /// sweep-0 batch); nullptr = cold query (every victim rebuilt).
  const std::vector<char>* dirty = nullptr;
  std::vector<BestSnap>* ho_snap = nullptr;  // elimination only
  /// Task-graph sweeps (cold queries) double-buffer the higher-order
  /// snapshots: ho_snap is the *current* sweep's buffer (written by each
  /// victim's fused publish), ho_prev the completed previous sweep's
  /// (immutable during the sweep, all-invalid at sweep 0). nullptr on the
  /// level-loop path, where the single ho_snap array carries both roles
  /// positionally (a same-or-higher-level entry simply hasn't been
  /// overwritten yet). `levels` is the wavefront's net -> level map.
  const std::vector<BestSnap>* ho_prev = nullptr;
  std::span<const int> levels;
  TopkResult* result = nullptr;

  /// Full-fixpoint circuit delay with exactly `members` active (addition)
  /// or removed (elimination). Cold queries run the iterative analysis from
  /// scratch; warm queries clone the session's primed fixpoint.
  std::function<double(std::span<const layout::CapId>,
                       const noise::IterativeOptions&)>
      evaluate;

  // Hot metric handles, hoisted once per query.
  obs::Counter* c_sets = nullptr;
  obs::Counter* c_gen_cap = nullptr;
  obs::Counter* c_surviving = nullptr;
  obs::Histogram* h_ilist = nullptr;

  bool is_dirty(net::NetId v) const {
    return dirty == nullptr || (*dirty)[v] != 0;
  }

  /// The candidate sets of net `u` at `card` as a reader in `sweep` sees
  /// them. Rebuilt nets expose their live list; a net not rebuilt this
  /// cardinality kept its stored final state, which is exactly what this
  /// sweep would have produced — except elimination sweep 0, where the
  /// net's *sweep-0* snapshot from its own last rebuild is the
  /// bit-identical stand-in (its final state includes sweep-1 refinement
  /// a sweep-0 reader must not see).
  std::span<const CandidateSet> sets_of(net::NetId u, std::size_t card,
                                        int sweep) const {
    if (!addition && sweep == 0 && !is_dirty(u)) {
      return memo->sweep0[card - 1][u];
    }
    return memo->lists[card - 1][u].sets();
  }

  /// The higher-order snapshot of aggressor `a` as victim `v` sees it.
  /// Level-barrier semantics, independent of scheduler: a partner at a
  /// strictly lower level was published *this* sweep; a partner at the same
  /// or a higher level still carries the *previous* sweep's publication
  /// (invalid during sweep 0). The task-graph path realizes this with the
  /// explicit cur/prev pair — an a -> v dependency edge exists exactly for
  /// the lower-level partners, so cur[a] is complete when read.
  const BestSnap& ho_of(net::NetId a, net::NetId v) const {
    if (ho_prev != nullptr && levels[a] >= levels[v]) return (*ho_prev)[a];
    return (*ho_snap)[a];
  }
};

}  // namespace tka::topk::stages
