#include "topk/stages/evaluate_stage.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.hpp"
#include "runtime/task_graph.hpp"
#include "topk/local_topk.hpp"

namespace tka::topk::stages {

EvaluateStage::EvaluateStage(QueryContext* ctx) : ctx_(ctx) {
  const sta::WindowTable& windows = *ctx_->base->windows;
  hot_pos_ = ctx_->base->sinks;
  std::sort(hot_pos_.begin(), hot_pos_.end(),
            [&](net::NetId a, net::NetId b) {
              return windows[a].lat > windows[b].lat;
            });
  if (hot_pos_.size() > kSinkPoLimit) hot_pos_.resize(kSinkPoLimit);
  sink_lists_.resize(ctx_->k + 1);
}

double EvaluateStage::sink_est_delay(const SinkSet& s) const {
  const sta::WindowTable& windows = *ctx_->base->windows;
  double worst = 0.0;
  for (net::NetId q : ctx_->base->sinks) {
    double red = 0.0;
    for (const auto& [p, r] : s.per_po) {
      if (p == q) red = r;
    }
    worst = std::max(worst, windows[q].lat - red);
  }
  return worst;
}

// A winning set of cardinality j < i is still the best exactly-i choice
// when a victim's couplings run out — the budget is completed with the
// largest unused caps (adding more aggressors never lowers the addition
// delay; removing more never raises the elimination one).
std::vector<layout::CapId> EvaluateStage::pad_to(
    std::vector<layout::CapId> members, std::size_t card) const {
  // Swap rather than move so the displaced members buffer becomes the next
  // iteration's scratch instead of a fresh allocation per cap.
  std::vector<layout::CapId> merged;
  for (layout::CapId id : ctx_->base->caps_by_size) {
    if (members.size() >= card) break;
    if (union_with(members, id, merged)) std::swap(members, merged);
  }
  return members;
}

void EvaluateStage::select(std::size_t i) {
  const BaselineState& base = *ctx_->base;
  const sta::WindowTable& windows = *base.windows;
  SweepMemo& memo = *ctx_->memo;
  TopkResult& result = *ctx_->result;
  const std::vector<IList>& cur = memo.lists[i - 1];
  const bool addition = ctx_->addition;

  double best_delay = addition ? -std::numeric_limits<double>::infinity()
                               : std::numeric_limits<double>::infinity();
  std::vector<layout::CapId> best_set;
  std::vector<std::vector<layout::CapId>> finalists;
  double circuit_floor = 0.0;  // arrival of POs unaffected by the set
  for (net::NetId p : base.sinks) {
    circuit_floor = std::max(circuit_floor, windows[p].lat);
  }

  if (addition) {
    std::vector<std::pair<double, const CandidateSet*>> ranked;
    for (net::NetId p : base.sinks) {
      // A PO's best set of any cardinality j <= i is a valid exactly-i
      // choice once padded (pad_to); lower-j winners matter when the PO's
      // cone runs out of distinct couplings.
      for (std::size_t j = 1; j <= i; ++j) {
        if (memo.winner_score[p][j] < 0.0) continue;
        const double arrival = windows[p].lat + memo.winner_score[p][j];
        if (arrival > best_delay) {
          best_delay = arrival;
          best_set = memo.winner_members[p][j];
        }
      }
      if (cur[p].empty()) continue;
      const CandidateSet& s = cur[p].best();
      ranked.emplace_back(windows[p].lat + s.score, &s);
    }
    if (!ctx_->opt->use_pseudo) {
      // Flat fallback: local noise assumed to propagate unclamped along the
      // victim's worst path (arrival = max_lat - slack + dn).
      const std::size_t num_nets = ctx_->design.nl->num_nets();
      for (net::NetId v = 0; v < num_nets; ++v) {
        if (cur[v].empty() || !std::isfinite(base.base_slack[v])) continue;
        const CandidateSet& s = cur[v].best();
        const double arrival = circuit_floor - base.base_slack[v] + s.score;
        ranked.emplace_back(arrival, &s);
        if (arrival > best_delay) {
          best_delay = arrival;
          best_set = s.members;
        }
      }
    }
    // Sink-side selection via local top-k heaps + tree merge
    // (topk/local_topk.hpp): deterministic (arrival desc, insertion-order
    // tie-break) and never sorts more than the finalists it keeps.
    for (std::size_t idx : select_top_n(
             ctx_->threads, ranked.size(), kFinalists,
             [&](std::size_t r) { return ranked[r].first; })) {
      finalists.push_back(ranked[idx].second->members);
    }
    if (best_set.empty()) {
      // No cardinality-i set anywhere (tiny design / large i): keep the
      // previous cardinality's choice — a k'-set is a valid k-set choice.
      best_delay = result.estimated_delay_by_k.empty()
                       ? circuit_floor
                       : result.estimated_delay_by_k.back();
      if (!result.set_by_k.empty()) best_set = result.set_by_k.back();
    }
    best_delay = std::max(best_delay, circuit_floor);
  } else {
    // Build the virtual-sink list of cardinality i: single-PO sets plus
    // unions of a lower-cardinality sink set with another PO's set.
    std::vector<SinkSet>& slist = sink_lists_[i];
    std::vector<layout::CapId> merged;
    auto push_sink = [&](SinkSet s) {
      s.est_delay = sink_est_delay(s);
      slist.push_back(std::move(s));
    };
    for (net::NetId p : hot_pos_) {
      for (const CandidateSet& s : cur[p].sets()) {
        SinkSet ss;
        ss.members = s.members;
        ss.per_po = {{p, std::max(s.score, 0.0)}};
        push_sink(std::move(ss));
      }
    }
    for (std::size_t j = 1; j < i; ++j) {
      for (const SinkSet& base_set : sink_lists_[j]) {
        for (net::NetId p : hot_pos_) {
          bool has_p = false;
          for (const auto& [q, r] : base_set.per_po) has_p |= (q == p);
          if (has_p) continue;  // same-PO compositions live in cur[p]
          for (const CandidateSet& s : cur[p].sets()) {
            if (s.members.size() != i - j) continue;
            if (!union_disjoint(base_set.members, s.members, merged)) continue;
            SinkSet ss;
            ss.members = merged;
            ss.per_po = base_set.per_po;
            ss.per_po.emplace_back(p, std::max(s.score, 0.0));
            push_sink(std::move(ss));
          }
        }
      }
    }
    // Aggregate identical member-sets: one coupling set can reduce several
    // POs at once (every cap has two victim sides), so merge per-PO
    // reductions (max per PO) before scoring.
    std::sort(slist.begin(), slist.end(),
              [](const SinkSet& a, const SinkSet& b) {
                return a.members < b.members;
              });
    std::vector<SinkSet> merged_list;
    for (SinkSet& s : slist) {
      if (!merged_list.empty() && merged_list.back().members == s.members) {
        SinkSet& dst = merged_list.back();
        for (const auto& [p, r] : s.per_po) {
          bool found = false;
          for (auto& [q, rq] : dst.per_po) {
            if (q == p) {
              rq = std::max(rq, r);
              found = true;
            }
          }
          if (!found) dst.per_po.emplace_back(p, r);
        }
      } else {
        merged_list.push_back(std::move(s));
      }
    }
    for (SinkSet& s : merged_list) s.est_delay = sink_est_delay(s);
    std::sort(merged_list.begin(), merged_list.end(),
              [](const SinkSet& a, const SinkSet& b) {
                if (a.est_delay != b.est_delay) return a.est_delay < b.est_delay;
                return a.members < b.members;
              });
    if (merged_list.size() > kSinkBeam) merged_list.resize(kSinkBeam);
    slist = std::move(merged_list);
    if (!slist.empty()) {
      best_delay = slist.front().est_delay;
      best_set = slist.front().members;
      for (const SinkSet& s : slist) {
        if (finalists.size() >= kFinalists) break;
        finalists.push_back(s.members);
      }
      // Removing one more coupling never hurts: keep the curve monotone
      // when the exact-cardinality list happens to be worse than a
      // lower-cardinality choice.
      if (!result.estimated_delay_by_k.empty() &&
          result.estimated_delay_by_k.back() < best_delay) {
        best_delay = result.estimated_delay_by_k.back();
        best_set = result.set_by_k.back();
      }
    } else {
      best_delay = result.estimated_delay_by_k.empty()
                       ? circuit_floor
                       : result.estimated_delay_by_k.back();
      if (!result.set_by_k.empty()) best_set = result.set_by_k.back();
    }
  }
  result.set_by_k.push_back(pad_to(std::move(best_set), i));
  result.estimated_delay_by_k.push_back(best_delay);
  result.finalists_by_k.push_back(std::move(finalists));
}

void EvaluateStage::finalize() {
  const TopkOptions& opt = *ctx_->opt;
  TopkResult& result = *ctx_->result;
  if (!opt.reevaluate || result.members.empty()) return;
  const bool addition = ctx_->addition;
  const std::size_t k = ctx_->k;

  obs::ScopedSpan reevaluate_span("topk.reevaluate");
  result.evaluated_delay = ctx_->evaluate(result.members, ctx_->iter_opt);
  if (opt.rerank_top == 0) return;

  // Exact re-ranking: the estimator is first-order (it does not re-run the
  // window fixpoint per candidate), so evaluate the best few
  // final-cardinality candidates across all sinks and keep the true
  // optimum.
  std::vector<const std::vector<layout::CapId>*> finalists;
  if (addition) {
    std::vector<const CandidateSet*> cands;
    for (net::NetId p : ctx_->base->sinks) {
      std::size_t taken = 0;
      for (const CandidateSet& s : ctx_->memo->lists[k - 1][p].sets()) {
        if (s.members.empty() || s.members == result.members) continue;
        cands.push_back(&s);
        if (++taken >= opt.rerank_top) break;
      }
    }
    for (std::size_t idx : select_top_n(
             ctx_->threads, cands.size(), opt.rerank_top,
             [&](std::size_t c) { return cands[c]->score; })) {
      finalists.push_back(&cands[idx]->members);
    }
  } else {
    // Sink lists are already sorted best-first.
    for (const SinkSet& s : sink_lists_[k]) {
      if (s.members == result.members) continue;
      finalists.push_back(&s.members);
      if (finalists.size() >= opt.rerank_top) break;
    }
  }
  // Evaluate finalists on work-stealing chunks of one — full fixpoints
  // vary enough in iteration count that static chunking strands the lane
  // with the slow ones (each fixpoint itself runs serial to avoid
  // oversubscription). Per-slot writes; the winner is picked below in
  // index order so the strict-better / first-wins tie-breaking matches
  // the serial loop.
  noise::IterativeOptions finalist_opt = ctx_->iter_opt;
  finalist_opt.threads = 1;
  std::vector<double> finalist_delay(finalists.size(), 0.0);
  runtime::parallel_for_dynamic(
      ctx_->threads, 0, finalists.size(),
      [&](std::size_t fi) {
        finalist_delay[fi] = ctx_->evaluate(*finalists[fi], finalist_opt);
      },
      /*grain=*/1);
  for (std::size_t fi = 0; fi < finalists.size(); ++fi) {
    const double d = finalist_delay[fi];
    const bool better =
        addition ? d > result.evaluated_delay : d < result.evaluated_delay;
    if (better) {
      result.evaluated_delay = d;
      result.members = *finalists[fi];
    }
  }
}

}  // namespace tka::topk::stages
