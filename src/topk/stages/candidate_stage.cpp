#include "topk/stages/candidate_stage.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "obs/obs.hpp"
#include "util/logging.hpp"

namespace tka::topk::stages {
namespace {

constexpr double kShiftEps = 1e-9;  // ignore sub-picosecond pseudo shifts

// Per-victim candidate-generation ceiling. Only reachable when both
// dominance pruning and the beam cap are disabled (the blow-up the paper's
// §3.2 prevents); keeps such runs bounded instead of exhausting memory.
constexpr std::size_t kGenerationCap = 40000;

// The seed of cardinality 1: the single empty set.
const CandidateSet kEmptySeed{};

}  // namespace

double CandidateStage::score_env(const QueryContext& ctx, net::NetId v,
                                 const wave::Pwl& env) {
  const BaselineState& b = *ctx.base;
  if (ctx.addition) {
    return noise::delay_noise(b.vic_wave[v], env, b.vdd, b.vic_t50[v]);
  }
  // Elimination uses the *signed* residual shift: removing pseudo
  // aggressors can move the transition earlier than the local-noiseless
  // reference, and that benefit must not be clamped away.
  const double residual = noise::delay_shift(
      b.vic_wave[v], b.total_env[v].minus(env), b.vdd, b.vic_t50[v]);
  return std::max(0.0, b.dn_total[v] - residual);
}

void CandidateStage::generate(const QueryContext& ctx, net::NetId v,
                              std::size_t i, int sweep) {
  const TopkOptions& opt = *ctx.opt;
  const BaselineState& base = *ctx.base;
  const net::Netlist& nl = *ctx.design.nl;
  const sta::WindowTable& windows = *base.windows;
  noise::EnvelopeBuilder& builder = *base.builder;
  SweepMemo& memo = *ctx.memo;
  const bool addition = ctx.addition;

  std::vector<layout::CapId> tmp_members;
  obs::ScopedSpan victim_span("topk.victim");
  if (victim_span.recording()) {
    victim_span.arg("net", nl.net(v).name)
        .arg("i", static_cast<std::int64_t>(i))
        .arg("sweep", static_cast<std::int64_t>(sweep));
  }
  IList& list = memo.lists[i - 1][v];
  // Every candidate built below carries its envelope signature over the
  // victim's dominance interval, so PruneStage's dominance pass can settle
  // most pairs with signature compares alone (docs/KERNELS.md).
  const wave::DominanceInterval& iv = base.iv[v];
  if (sweep == 0) {
    list.clear();
    // A stale winner from the last query must not survive an empty rebuild.
    memo.winner_score[v][i] = -1.0;
    memo.winner_members[v][i].clear();
  }

  // Step 1: extend I-list_{i-1} with one additional primary aggressor.
  if (base.full_victim[v]) {
    const std::span<const CandidateSet> prev =
        i == 1 ? std::span<const CandidateSet>(&kEmptySeed, 1)
               : memo.lists[i - 2][v].sets();
    for (const CandidateSet& s : prev) {
      if (list.size() >= kGenerationCap) {
        ctx.c_gen_cap->add(1);
        if (log::enabled(log::Level::kDebug)) {
          log::debug() << "topk: victim " << nl.net(v).name
                       << " hit the generation cap at cardinality " << i;
        }
        break;
      }
      for (layout::CapId cap : base.active_caps[v]) {
        const wave::Pwl& cap_env = builder.envelope(v, cap);
        if (cap_env.empty()) continue;
        if (!union_with(s.members, cap, tmp_members)) continue;
        CandidateSet cand;
        cand.members = tmp_members;
        cand.envelope = s.envelope.plus(cap_env);
        if (cand.envelope.size() > 24) {
          cand.envelope = cand.envelope.simplified(opt.envelope_tol);
        }
        cand.score = score_env(ctx, v, cand.envelope);
        cand.sig = wave::make_signature(cand.envelope, iv);
        ctx.c_sets->add(1);
        list.try_add(std::move(cand));
      }
    }
  }

  const net::Net& n = nl.net(v);

  // Step 2: pseudo input aggressors of cardinality i from each fanin.
  if (opt.use_pseudo && n.driver != net::kInvalidGate) {
    const net::Gate& g = nl.gate(n.driver);
    std::vector<double> fanin_lats;
    fanin_lats.reserve(g.inputs.size());
    for (net::NetId in : g.inputs) fanin_lats.push_back(windows[in].lat);
    const double trans = std::max(windows[v].trans_late, 1e-4);
    auto add_pseudo = [&](std::vector<layout::CapId> members, double shift) {
      if (shift <= kShiftEps) return;
      CandidateSet cand;
      cand.members = std::move(members);
      cand.envelope =
          pseudo_envelope(base.vic_t50[v], trans, base.vdd, shift, opt.mode);
      // A propagated set can also couple the victim directly; both effects
      // are real and additive, so fold the local envelopes of any member
      // that is a primary of v into the pseudo envelope.
      for (layout::CapId cap : base.active_caps[v]) {
        if (!std::binary_search(cand.members.begin(), cand.members.end(),
                                cap)) {
          continue;
        }
        const wave::Pwl& ce = builder.envelope(v, cap);
        if (!ce.empty()) cand.envelope = cand.envelope.plus(ce);
      }
      if (cand.envelope.size() > 24) {
        cand.envelope = cand.envelope.simplified(opt.envelope_tol);
      }
      cand.score = score_env(ctx, v, cand.envelope);
      cand.sig = wave::make_signature(cand.envelope, iv);
      ctx.c_sets->add(1);
      list.try_add(std::move(cand));
    };
    // Fanins sit at strictly lower levels, so their current-cardinality
    // lists are complete by this level's barrier (clean fanins expose
    // their memoized state through sets_of).
    for (std::size_t j = 0; j < g.inputs.size(); ++j) {
      const net::NetId u = g.inputs[j];
      const std::span<const CandidateSet> us = ctx.sets_of(u, i, sweep);
      if (us.empty()) continue;
      const std::size_t take = opt.propagate_full_ilist ? us.size() : 1;
      for (std::size_t si = 0; si < take; ++si) {
        const CandidateSet& s =
            opt.propagate_full_ilist ? us[si] : *best_of(us);
        const double shift =
            propagate_shift(fanin_lats, j, std::max(s.score, 0.0), opt.mode);
        add_pseudo(s.members, shift);
      }
    }
    // Elimination on reconvergent logic, part 1: the same member set often
    // reduces several fanins at once (shared fanin cones; a cap's two
    // victim sides). Gather identical sets across fanins and apply all
    // their reductions jointly before the max-clamp.
    if (!addition && g.inputs.size() >= 2) {
      struct Joint {
        const std::vector<layout::CapId>* members = nullptr;
        std::vector<std::pair<std::size_t, double>> reductions;  // fanin, rho
      };
      std::unordered_map<std::uint64_t, Joint> joint;
      for (std::size_t j = 0; j < g.inputs.size(); ++j) {
        const net::NetId u = g.inputs[j];
        for (const CandidateSet& s : ctx.sets_of(u, i, sweep)) {
          if (s.score <= kShiftEps) continue;
          Joint& entry = joint[members_hash(s.members)];
          if (entry.members != nullptr && *entry.members != s.members) {
            continue;  // hash collision; drop the rarer set
          }
          entry.members = &s.members;
          entry.reductions.emplace_back(j, s.score);
        }
      }
      double max_lat = -std::numeric_limits<double>::infinity();
      for (double lat : fanin_lats) max_lat = std::max(max_lat, lat);
      for (const auto& [hash, entry] : joint) {
        if (entry.reductions.size() < 2) continue;  // singles done above
        std::vector<double> lats = fanin_lats;
        for (const auto& [j, rho] : entry.reductions) lats[j] -= rho;
        double new_max = -std::numeric_limits<double>::infinity();
        for (double lat : lats) new_max = std::max(new_max, lat);
        add_pseudo(*entry.members, std::max(0.0, max_lat - new_max));
      }
    }
    // Elimination on reconvergent logic, part 2: speeding up one fanin is
    // clamped by the other's arrival, so also form balanced unions of the
    // two latest fanins' winner sets (cardinality j + (i-j)).
    if (!addition && g.inputs.size() >= 2 && i >= 2) {
      std::size_t a_idx = 0;
      std::size_t b_idx = 1;
      if (fanin_lats[b_idx] > fanin_lats[a_idx]) std::swap(a_idx, b_idx);
      for (std::size_t j = 2; j < g.inputs.size(); ++j) {
        if (fanin_lats[j] > fanin_lats[a_idx]) {
          b_idx = a_idx;
          a_idx = j;
        } else if (fanin_lats[j] > fanin_lats[b_idx]) {
          b_idx = j;
        }
      }
      const net::NetId ua = g.inputs[a_idx];
      const net::NetId ub = g.inputs[b_idx];
      for (std::size_t j = 1; j < i; ++j) {
        const double ra = memo.winner_score[ua][j];
        const double rb = memo.winner_score[ub][i - j];
        if (ra <= kShiftEps || rb <= kShiftEps) continue;
        if (!union_disjoint(memo.winner_members[ua][j],
                            memo.winner_members[ub][i - j], tmp_members)) {
          continue;
        }
        double new_max = -std::numeric_limits<double>::infinity();
        for (std::size_t fi = 0; fi < g.inputs.size(); ++fi) {
          double lat = fanin_lats[fi];
          if (fi == a_idx) lat -= ra;
          if (fi == b_idx) lat -= rb;
          new_max = std::max(new_max, lat);
        }
        double max_lat = -std::numeric_limits<double>::infinity();
        for (double lat : fanin_lats) max_lat = std::max(max_lat, lat);
        add_pseudo(tmp_members, std::max(0.0, max_lat - new_max));
      }
    }
  }

  // Step 3: higher-order aggressors of cardinality i.
  if (opt.use_higher_order && base.full_victim[v] && i >= 2) {
    for (layout::CapId cap : base.active_caps[v]) {
      const net::NetId a = ctx.design.par->coupling(cap).other(v);
      if (addition) {
        // The aggressor's own worst (i-1)-set widens its window.
        const double widen = memo.winner_score[a][i - 1];
        if (widen <= kShiftEps) continue;
        if (!union_with(memo.winner_members[a][i - 1], cap, tmp_members)) {
          continue;
        }
        CandidateSet cand;
        cand.members = tmp_members;
        cand.envelope = builder.envelope_widened(v, cap, widen)
                            .simplified(opt.envelope_tol);
        cand.score = score_env(ctx, v, cand.envelope);
        cand.sig = wave::make_signature(cand.envelope, iv);
        ctx.c_sets->add(1);
        list.try_add(std::move(cand));
      } else {
        // Elimination: removing the aggressor's own worst i-set narrows the
        // aggressor window; the removed envelope is the trim of this cap's
        // envelope (the cap itself stays). Reads the aggressor's published
        // snapshot (PruneStage::publish/publish_one): the current sweep's
        // when `a`'s level precedes `v`'s, the previous sweep's otherwise
        // (see QueryContext::ho_of).
        const BestSnap& s = ctx.ho_of(a, v);
        if (!s.valid || s.score <= kShiftEps) continue;
        if (std::binary_search(s.members.begin(), s.members.end(), cap)) {
          continue;
        }
        const wave::Pwl& full_env = builder.envelope(v, cap);
        // Narrowed window: the aggressor's noisy LAT retreats by the
        // reduction; rebuild with a negative extension via the base
        // (noiseless-LAT) envelope widened by the remaining noise.
        const wave::Pwl narrowed = builder.envelope_widened(v, cap, -s.score)
                                       .simplified(opt.envelope_tol);
        wave::Pwl diff = full_env.minus(narrowed).clamped(0.0, base.vdd);
        if (diff.peak() <= 1e-9) continue;
        CandidateSet cand;
        cand.members = s.members;
        cand.envelope = diff.simplified(opt.envelope_tol);
        cand.score = score_env(ctx, v, cand.envelope);
        cand.sig = wave::make_signature(cand.envelope, iv);
        ctx.c_sets->add(1);
        list.try_add(std::move(cand));
      }
    }
  }
}

}  // namespace tka::topk::stages
