#include "topk/irredundant_list.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace tka::topk {

bool IList::try_add(CandidateSet set) {
  const std::uint64_t h = members_hash(set.members);
  auto [lo, hi] = index_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    CandidateSet& existing = sets_[it->second];
    if (existing.members == set.members) {
      if (set.score > existing.score) {
        set.envelope.compact();
        existing = std::move(set);
        // Scores only ever grow here, so the previous best cannot lose its
        // spot — but a lower index reaching the best score must take over
        // (first-of-equals wins, matching a linear rescan).
        if (existing.score > sets_[best_].score ||
            (it->second < best_ && existing.score == sets_[best_].score)) {
          best_ = it->second;
        }
        return true;
      }
      return false;
    }
  }
  index_.emplace(h, sets_.size());
  // Sets that make it into the list outlive the sweep (memoized lists,
  // session results); park them at their exact footprint.
  set.envelope.compact();
  sets_.push_back(std::move(set));
  if (best_ == kNoBest || sets_.back().score > sets_[best_].score) {
    best_ = sets_.size() - 1;
  }
  return true;
}

void IList::reduce(const wave::DominanceInterval& interval, double tol,
                   size_t beam_cap, bool use_dominance, PruneStats* stats,
                   std::span<const layout::CapId> victim_caps) {
  // Extension seeds: for each of the victim's own caps, remember the best
  // candidate not containing it (see header).
  std::vector<CandidateSet> seeds;
  if (use_dominance && !victim_caps.empty()) {
    seeds.reserve(victim_caps.size());
    for (layout::CapId cap : victim_caps) {
      const CandidateSet* best = nullptr;
      for (const CandidateSet& s : sets_) {
        if (std::binary_search(s.members.begin(), s.members.end(), cap)) continue;
        if (best == nullptr || s.score > best->score) best = &s;
      }
      if (best != nullptr) seeds.push_back(*best);
    }
  }

  if (use_dominance) prune_dominated(sets_, interval, tol, stats);
  // Safety net for runs with neither dominance nor a beam (the blow-up the
  // paper's §3.2 is about): cap the list rather than exhausting memory.
  constexpr size_t kEmergencyCap = 20000;
  if (!use_dominance && beam_cap == 0 && sets_.size() > kEmergencyCap) {
    apply_beam(sets_, kEmergencyCap, stats);
  }
  apply_beam(sets_, beam_cap, stats);

  // Re-add any seed the pruning removed (deduplicated by members).
  for (CandidateSet& seed : seeds) {
    bool present = false;
    for (const CandidateSet& s : sets_) {
      if (s.members == seed.members) {
        present = true;
        break;
      }
    }
    if (!present) sets_.push_back(std::move(seed));
  }

  // The list is memoized for the rest of the run and the beam has settled
  // its final size, so drop the generation-phase growth slack — the pruning
  // above compacts in place and would otherwise leave the pre-prune
  // capacity parked in every memoized list.
  sets_.shrink_to_fit();

  // Rebuild the dedup index and the best pointer after reordering/removal.
  index_.clear();
  best_ = sets_.empty() ? kNoBest : 0;
  for (size_t i = 0; i < sets_.size(); ++i) {
    index_.emplace(members_hash(sets_[i].members), i);
    if (sets_[i].score > sets_[best_].score) best_ = i;
  }
}

const CandidateSet& IList::best() const {
  TKA_ASSERT(!sets_.empty());
  return sets_[best_];
}

void IList::clear() {
  sets_.clear();
  index_.clear();
  best_ = kNoBest;
}

std::size_t IList::approx_bytes() const {
  // Per index node: hash/index pair plus a flat bucket+link allowance.
  constexpr std::size_t kIndexNodeBytes =
      sizeof(std::pair<std::uint64_t, size_t>) + 2 * sizeof(void*);
  std::size_t bytes = sets_.capacity() * sizeof(CandidateSet) +
                      index_.size() * kIndexNodeBytes;
  for (const CandidateSet& s : sets_) {
    bytes += s.members.capacity() * sizeof(layout::CapId);
    bytes += s.envelope.heap_bytes();
  }
  return bytes;
}

}  // namespace tka::topk
