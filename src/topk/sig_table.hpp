// SoA envelope-signature table: the dominance pre-filter's data layout.
//
// prune_dominated compares every candidate against all kept winners; the
// overwhelmingly common outcome is a signature reject, so the pre-filter's
// memory layout decides the sweep's speed. A CandidateSet array scatters
// each signature's peak/integral/8-grid samples across ~300-byte structs;
// this table packs the winners' signature fields into contiguous parallel
// columns — peak[], integral[], and the 8-point sample grids as one dense
// row-per-entry array (64 bytes, exactly one cache line, the natural SIMD
// width the grid was sized for) — so sweeping one candidate against every
// winner streams packed doubles instead of hopping between structs
// (docs/KERNELS.md).
//
// The compare evaluates exactly the scalar wave::signature_rejects
// predicate per pair (same IEEE expressions, same ordered-comparison NaN
// semantics, the AVX2 path included), so the reject decisions — and with
// them the pruning results and the dominance.* counters — are bit-identical
// to the per-candidate scalar sweep.
#pragma once

#include <cstddef>
#include <cstdint>

#include <vector>

#include "wave/envelope.hpp"

namespace tka::topk {

/// Packed columns of EnvelopeSignature entries sharing one dominance
/// interval. Append-only between clears; used as per-sweep scratch by
/// prune_dominated (winners are appended as they survive).
class SigTable {
 public:
  /// The candidate-side constants of wave::signature_rejects, hoisted once
  /// per candidate: every term of the predicate compares a packed column
  /// against one of these (computed with the scalar path's exact
  /// expressions, so each pair still sees bit-identical operands).
  struct Prepared {
    double peak_plus_gap_rhs = 0.0;  ///< b.peak (lhs of peak > a.peak+gap)
    double gap = 0.0;
    double integral = 0.0;  ///< b.integral
    double span_gap = 0.0;  ///< gap * (b.hi - b.lo)
    double samples_gap[wave::EnvelopeSignature::kSamples] = {};  ///< b.s[i]-gap
  };

  static Prepared prepare(const wave::EnvelopeSignature& b, double tol);

  /// All entries pushed between clears must be valid signatures of the same
  /// interval (prune_dominated backfills them before the sweep), which lets
  /// the compare hoist the validity/interval checks of the scalar
  /// predicate out of the loop.
  void push_back(const wave::EnvelopeSignature& sig);

  void clear();
  void reserve(std::size_t n);
  std::size_t size() const { return peak_.size(); }
  bool empty() const { return peak_.empty(); }

  /// Heap bytes owned by the packed columns.
  std::size_t heap_bytes() const;

  /// True when entry j (as the prospective dominator `a`) signature-rejects
  /// the prepared candidate, exactly as wave::signature_rejects(a_j, b,
  /// tol) would. Peak and integral short-circuit scalar (they settle ~95%
  /// of pairs); the sample grid is one SIMD compare over the entry's
  /// cache-line row.
  bool rejects(std::size_t j, const Prepared& b) const {
    if (b.peak_plus_gap_rhs > peak_[j] + b.gap) return true;
    if (b.integral - integral_[j] > b.span_gap) return true;
    return samples_reject(
        &samples_[j * wave::EnvelopeSignature::kSamples], b);
  }

  /// Whole-table form of rejects() (no early exit): flags[j] = 1 when entry
  /// j rejects. For the bench harness and agreement fuzz tests.
  void rejects_batch(const wave::EnvelopeSignature& b, double tol,
                     std::uint8_t* flags) const;

  /// Scalar reference for entry j — rebuilds the signature and defers to
  /// wave::signature_rejects. Used by tests to pin agreement.
  bool rejects_one(std::size_t j, const wave::EnvelopeSignature& b,
                   double tol) const;

 private:
  static bool samples_reject(const double* row, const Prepared& b);
#if defined(__x86_64__)
  __attribute__((target("avx2"))) static bool samples_reject_avx2(
      const double* row, const Prepared& b);
#endif

  // Interval shared by every entry (recorded from the first push).
  double lo_ = 0.0;
  double hi_ = 0.0;
  std::vector<double> peak_;
  std::vector<double> integral_;
  /// kSamples consecutive doubles per entry (entry-major rows).
  std::vector<double> samples_;
};

}  // namespace tka::topk
