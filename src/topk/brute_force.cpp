#include "topk/brute_force.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/timer.hpp"

namespace tka::topk {

std::optional<BruteForceResult> brute_force_topk(
    const net::Netlist& nl, const layout::Parasitics& par,
    const sta::DelayModel& model, const noise::CouplingCalculator& calc,
    const BruteForceOptions& opt) {
  TKA_ASSERT(opt.k >= 1);
  std::vector<layout::CapId> pool;
  for (layout::CapId id = 0; id < par.num_couplings(); ++id) {
    if (par.coupling(id).cap_pf > 0.0) pool.push_back(id);
  }
  const size_t r = pool.size();
  const size_t k = static_cast<size_t>(opt.k);
  if (r < k) return std::nullopt;

  const bool addition = (opt.mode == Mode::kAddition);
  Timer timer;
  BruteForceResult result;
  result.delay = addition ? -std::numeric_limits<double>::infinity()
                          : std::numeric_limits<double>::infinity();

  auto evaluate = [&](const std::vector<size_t>& combo) {
    noise::CouplingMask mask = addition
                                   ? noise::CouplingMask::none(par.num_couplings())
                                   : noise::CouplingMask::all(par.num_couplings());
    for (size_t idx : combo) mask.set(pool[idx], addition);
    const noise::NoiseReport rep =
        noise::analyze_iterative(nl, par, model, calc, mask, opt.iterative);
    ++result.subsets_evaluated;
    const bool better = addition ? rep.noisy_delay > result.delay
                                 : rep.noisy_delay < result.delay;
    if (better) {
      result.delay = rep.noisy_delay;
      result.members.clear();
      for (size_t idx : combo) result.members.push_back(pool[idx]);
      std::sort(result.members.begin(), result.members.end());
    }
  };

  // Lexicographic combination enumeration.
  std::vector<size_t> combo(k);
  for (size_t i = 0; i < k; ++i) combo[i] = i;
  for (;;) {
    if (timer.seconds() > opt.timeout_s) {
      result.timed_out = true;
      break;
    }
    evaluate(combo);
    // Advance to the next combination.
    size_t pos = k;
    while (pos > 0) {
      --pos;
      if (combo[pos] != pos + r - k) break;
      if (pos == 0) {
        pos = k;  // exhausted
        break;
      }
    }
    if (pos == k) break;
    ++combo[pos];
    for (size_t j = pos + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
  }

  result.runtime_s = timer.seconds();
  return result;
}

}  // namespace tka::topk
