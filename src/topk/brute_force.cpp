#include "topk/brute_force.hpp"

#include <algorithm>
#include <atomic>

#include "runtime/runtime.hpp"
#include "topk/stages/baseline_stage.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace tka::topk {

std::optional<BruteForceResult> brute_force_topk(
    const net::Netlist& nl, const layout::Parasitics& par,
    const sta::DelayModel& model, const noise::CouplingCalculator& calc,
    const BruteForceOptions& opt) {
  TKA_ASSERT(opt.k >= 1);
  std::vector<layout::CapId> pool;
  for (layout::CapId id = 0; id < par.num_couplings(); ++id) {
    if (par.coupling(id).cap_pf > 0.0) pool.push_back(id);
  }
  const size_t r = pool.size();
  const size_t k = static_cast<size_t>(opt.k);
  if (r < k) return std::nullopt;

  const bool addition = (opt.mode == Mode::kAddition);
  Timer timer;
  BruteForceResult result;
  result.delay = addition ? -std::numeric_limits<double>::infinity()
                          : std::numeric_limits<double>::infinity();

  const int threads = runtime::resolve_threads(opt.threads);
  // Each worker runs one whole fixpoint; keep the inner relaxation sweep
  // serial so a batch does not oversubscribe the pool.
  noise::IterativeOptions iter_opt = opt.iterative;
  if (threads > 1) iter_opt.threads = 1;

  // The timeout is polled inside each evaluation task, not just between
  // batches: with threads > 1 a batch holds up to threads*4 fixpoints
  // (each potentially seconds on large designs), so a between-batches-only
  // check could overshoot opt.timeout_s by a whole batch. Returns false
  // without evaluating once the deadline has passed.
  std::atomic<bool> deadline_hit{false};
  auto evaluate = [&](const std::vector<size_t>& combo, double& delay) {
    if (deadline_hit.load(std::memory_order_relaxed) ||
        timer.seconds() > opt.timeout_s) {
      deadline_hit.store(true, std::memory_order_relaxed);
      return false;
    }
    std::vector<layout::CapId> members;
    members.reserve(combo.size());
    for (size_t idx : combo) members.push_back(pool[idx]);
    delay = stages::BaselineStage::masked_delay({&nl, &par, &model, &calc},
                                                members, opt.mode, iter_opt);
    return true;
  };
  auto record = [&](const std::vector<size_t>& combo, double delay) {
    ++result.subsets_evaluated;
    const bool better =
        addition ? delay > result.delay : delay < result.delay;
    if (better) {
      result.delay = delay;
      result.members.clear();
      for (size_t idx : combo) result.members.push_back(pool[idx]);
      std::sort(result.members.begin(), result.members.end());
    }
  };

  // Lexicographic combination enumeration, in batches of independent
  // fixpoint evaluations. The winner is reduced in enumeration order on
  // the calling thread (strict-better, first wins), so the reported set
  // and delay match the serial scan for any thread count. Batch size 1
  // when serial keeps the per-combination timeout granularity of old.
  const size_t batch_cap = threads > 1 ? static_cast<size_t>(threads) * 4 : 1;
  std::vector<size_t> combo(k);
  for (size_t i = 0; i < k; ++i) combo[i] = i;
  std::vector<std::vector<size_t>> batch;
  std::vector<double> delays;
  std::vector<char> evaluated;
  bool exhausted = false;
  while (!exhausted) {
    if (deadline_hit.load(std::memory_order_relaxed) ||
        timer.seconds() > opt.timeout_s) {
      result.timed_out = true;
      break;
    }
    batch.clear();
    while (batch.size() < batch_cap) {
      batch.push_back(combo);
      // Advance to the next combination.
      size_t pos = k;
      while (pos > 0) {
        --pos;
        if (combo[pos] != pos + r - k) break;
        if (pos == 0) {
          pos = k;  // exhausted
          break;
        }
      }
      if (pos == k) {
        exhausted = true;
        break;
      }
      ++combo[pos];
      for (size_t j = pos + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
    }
    delays.assign(batch.size(), 0.0);
    evaluated.assign(batch.size(), 0);
    runtime::parallel_for(threads, 0, batch.size(), [&](size_t bi) {
      evaluated[bi] = evaluate(batch[bi], delays[bi]) ? 1 : 0;
    });
    for (size_t bi = 0; bi < batch.size(); ++bi) {
      if (evaluated[bi]) record(batch[bi], delays[bi]);
    }
  }
  if (deadline_hit.load(std::memory_order_relaxed)) result.timed_out = true;

  result.runtime_s = timer.seconds();
  return result;
}

}  // namespace tka::topk
