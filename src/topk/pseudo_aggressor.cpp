#include "topk/pseudo_aggressor.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"
#include "wave/ramp.hpp"

namespace tka::topk {

wave::Pwl pseudo_envelope(double t50, double trans, double vdd, double shift,
                          Mode mode) {
  TKA_ASSERT(shift >= 0.0);
  TKA_ASSERT(trans > 0.0);
  if (shift <= 0.0) return wave::Pwl();
  const double base = (mode == Mode::kAddition) ? t50 : t50 - shift;
  const wave::Pwl early = wave::make_rising_ramp(base, trans, vdd);
  const wave::Pwl late = wave::make_rising_ramp(base + shift, trans, vdd);
  return early.minus(late);
}

double propagate_shift(std::span<const double> input_lats, size_t which,
                       double shift, Mode mode) {
  TKA_ASSERT(which < input_lats.size());
  TKA_ASSERT(shift >= 0.0);
  double max_lat = -std::numeric_limits<double>::infinity();
  for (double lat : input_lats) max_lat = std::max(max_lat, lat);

  if (mode == Mode::kAddition) {
    // Output LAT goes from max_lat to max(max_lat, lat_u + shift).
    return std::max(0.0, input_lats[which] + shift - max_lat);
  }
  // Elimination: output LAT goes from max_lat to the new controlling LAT.
  double new_max = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < input_lats.size(); ++i) {
    const double lat = (i == which) ? input_lats[i] - shift : input_lats[i];
    new_max = std::max(new_max, lat);
  }
  return std::max(0.0, max_lat - new_max);
}

}  // namespace tka::topk
