// Route estimation: every net is routed as a set of L-shapes (one
// horizontal + one vertical segment per sink) from the driver pin. This is
// the standard pre-route coupling estimate; the extractor measures
// parallel-run overlap between the resulting segments.
#pragma once

#include "layout/geometry.hpp"
#include "layout/placer.hpp"
#include "net/netlist.hpp"

namespace tka::layout {

/// The segments routed for one sink pin (its L-shape from the driver).
struct SinkSegments {
  net::PinRef pin;
  std::vector<Segment> segments;

  double length() const;
};

/// All wire segments of one net. `segments` is the flat list the extractor
/// consumes; `sinks` keeps the per-sink grouping for Elmore-style per-pin
/// delay analysis.
struct Route {
  net::NetId net = net::kInvalidNet;
  std::vector<Segment> segments;
  std::vector<SinkSegments> sinks;

  double total_length() const;
};

/// Routes every net as driver-to-sink L-shapes (horizontal first).
std::vector<Route> route_all(const net::Netlist& nl, const Placement& placement);

}  // namespace tka::layout
