// Minimal 2-D geometry for placement and route-proximity extraction.
// Distances are in micrometers.
#pragma once

#include <cmath>
#include <vector>

namespace tka::layout {

struct XY {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const XY&, const XY&) = default;
};

/// Axis-aligned wire segment; normalized so (x1,y1) <= (x2,y2) along the
/// running axis. A zero-length segment is allowed (via stubs).
struct Segment {
  double x1 = 0, y1 = 0, x2 = 0, y2 = 0;

  bool horizontal() const { return y1 == y2; }
  bool vertical() const { return x1 == x2; }
  double length() const { return std::abs(x2 - x1) + std::abs(y2 - y1); }
};

/// Creates a normalized horizontal segment at y spanning [xa, xb].
Segment make_h(double y, double xa, double xb);
/// Creates a normalized vertical segment at x spanning [ya, yb].
Segment make_v(double x, double ya, double yb);

/// Parallel-run descriptor between two segments of the same orientation.
struct ParallelRun {
  double overlap = 0.0;   ///< common-span length (um); 0 when none
  double distance = 0.0;  ///< perpendicular separation (um)
};

/// Overlap/separation of two same-orientation segments; overlap 0 when the
/// segments have different orientations or disjoint spans.
ParallelRun parallel_run(const Segment& a, const Segment& b);

}  // namespace tka::layout
