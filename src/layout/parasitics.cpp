#include "layout/parasitics.hpp"

#include "util/assert.hpp"

namespace tka::layout {

net::NetId CouplingCap::other(net::NetId n) const {
  TKA_ASSERT(n == net_a || n == net_b);
  return n == net_a ? net_b : net_a;
}

void Parasitics::add_ground_cap(net::NetId n, double pf) {
  TKA_ASSERT(n < num_nets());
  TKA_ASSERT(pf >= 0.0);
  ground_cap_pf_.mut(n) += pf;
}

void Parasitics::add_wire_res(net::NetId n, double kohm) {
  TKA_ASSERT(n < num_nets());
  TKA_ASSERT(kohm >= 0.0);
  wire_res_kohm_.mut(n) += kohm;
}

CapId Parasitics::add_coupling(net::NetId a, net::NetId b, double cap_pf) {
  TKA_ASSERT(a < num_nets() && b < num_nets());
  TKA_ASSERT(a != b);
  TKA_ASSERT(cap_pf > 0.0);
  const CapId id = static_cast<CapId>(couplings_.size());
  couplings_.push_back({a, b, cap_pf});
  couplings_of_.mut(a).push_back(id);
  couplings_of_.mut(b).push_back(id);
  return id;
}

double Parasitics::total_coupling_cap(net::NetId n) const {
  double total = 0.0;
  for (CapId id : couplings_of_.at(n)) total += couplings_[id].cap_pf;
  return total;
}

void Parasitics::zero_coupling(CapId id) {
  TKA_ASSERT(id < couplings_.size());
  couplings_.mut(id).cap_pf = 0.0;
}

void Parasitics::shield_coupling(CapId id) {
  TKA_ASSERT(id < couplings_.size());
  const CouplingCap cc = couplings_[id];
  if (cc.cap_pf <= 0.0) return;
  add_ground_cap(cc.net_a, cc.cap_pf);
  add_ground_cap(cc.net_b, cc.cap_pf);
  couplings_.mut(id).cap_pf = 0.0;
}

}  // namespace tka::layout
