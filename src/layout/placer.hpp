// Levelized grid placement. Stands in for the commercial APR tool in the
// paper's flow: gates are placed column-by-logic-level with row jitter, so
// nets of nearby levels run close together and couple — giving the same
// locality structure real routed designs exhibit.
#pragma once

#include "layout/geometry.hpp"
#include "net/netlist.hpp"
#include "util/rng.hpp"

namespace tka::layout {

/// Placement controls (um).
struct PlacerOptions {
  double col_pitch = 12.0;  ///< horizontal distance between logic levels
  double row_pitch = 4.0;   ///< vertical distance between cells in a level
  double jitter = 1.5;      ///< random displacement amplitude
  std::uint64_t seed = 1;
};

/// Result: one location per gate and one per primary-input pin (indexed by
/// net id for PIs).
class Placement {
 public:
  Placement(std::vector<XY> gate_xy, std::vector<XY> pi_xy)
      : gate_xy_(std::move(gate_xy)), pi_xy_(std::move(pi_xy)) {}

  const XY& gate(net::GateId g) const { return gate_xy_.at(g); }

  /// Location of a primary input pad (indexed by net id; only valid for
  /// nets with is_primary_input).
  const XY& primary_input(net::NetId n) const { return pi_xy_.at(n); }

  /// Driver location of a net (gate output pin or PI pad).
  XY driver_of(const net::Netlist& nl, net::NetId n) const;

 private:
  std::vector<XY> gate_xy_;
  std::vector<XY> pi_xy_;  // sized num_nets; meaningful only for PIs
};

/// Places all gates on the level grid.
Placement grid_place(const net::Netlist& nl, const PlacerOptions& options);

}  // namespace tka::layout
