// Extracted parasitics: per-net wire RC plus the list of coupling
// capacitances. Coupling caps are the atoms of the whole analysis — a
// "top-k aggressor set" is a set of CapIds.
#pragma once

#include <cstddef>

#include <cstdint>
#include <type_traits>
#include <vector>

#include "net/netlist.hpp"
#include "util/cow_vec.hpp"

namespace tka::layout {

/// Identifier of one coupling capacitance (aggressor-victim coupling).
using CapId = std::uint32_t;

inline constexpr CapId kInvalidCap = std::numeric_limits<CapId>::max();

/// One coupling capacitance between two nets. Couplings are symmetric:
/// either side can be victim with the other as aggressor.
struct CouplingCap {
  net::NetId net_a = net::kInvalidNet;
  net::NetId net_b = net::kInvalidNet;
  double cap_pf = 0.0;

  /// The other end relative to `n` (asserts n is one of the two).
  net::NetId other(net::NetId n) const;
};

/// Per-net wire parasitics plus the coupling list.
///
/// All storage is chunked copy-on-write (util::CowVec): copying a
/// Parasitics shares the payload, and zero/shield edits on the copy clone
/// only the chunks they touch. The coupling adjacency (couplings_of_) is
/// immutable after extraction, so it is shared across every snapshot of a
/// design forever.
class Parasitics {
 public:
  using CouplingStore = util::CowVec<CouplingCap, 11>;

  explicit Parasitics(size_t num_nets)
      : ground_cap_pf_(num_nets, 0.0), wire_res_kohm_(num_nets, 0.0),
        couplings_of_(num_nets) {}

  size_t num_nets() const { return ground_cap_pf_.size(); }
  size_t num_couplings() const { return couplings_.size(); }

  /// Adds wire ground capacitance / resistance to a net.
  void add_ground_cap(net::NetId n, double pf);
  void add_wire_res(net::NetId n, double kohm);

  double ground_cap(net::NetId n) const { return ground_cap_pf_.at(n); }
  double wire_res(net::NetId n) const { return wire_res_kohm_.at(n); }

  /// Registers a coupling cap; returns its id. net_a != net_b, cap > 0.
  CapId add_coupling(net::NetId a, net::NetId b, double cap_pf);

  const CouplingCap& coupling(CapId id) const { return couplings_.at(id); }
  const CouplingStore& couplings() const { return couplings_; }

  /// Ids of all couplings touching net `n`.
  const std::vector<CapId>& couplings_of(net::NetId n) const {
    return couplings_of_.at(n);
  }

  /// Sum of coupling caps touching `n` (part of the net's total load).
  double total_coupling_cap(net::NetId n) const;

  /// Removes a coupling from analysis by zeroing it (ids stay stable; the
  /// noise engine skips zero caps). Used by elimination workflows.
  void zero_coupling(CapId id);

  /// Models fixing a coupling with a grounded shield: the coupling cap is
  /// zeroed and each side keeps an equivalent capacitance to ground, so
  /// the noise path disappears but the wire loading stays.
  void shield_coupling(CapId id);

  // --- Storage accounting (snapshot gauges) ---

  /// Calls fn(key, bytes) per COW storage chunk; `key` is identical across
  /// Parasitics sharing the chunk (see net::Netlist::visit_storage).
  template <typename Fn>
  void visit_storage(Fn&& fn) const {
    auto flat = [&](const void* key, const auto& chunk) {
      using Elem = typename std::decay_t<decltype(chunk)>::value_type;
      fn(key, chunk.capacity() * sizeof(Elem));
    };
    ground_cap_pf_.visit_chunks(flat);
    wire_res_kohm_.visit_chunks(flat);
    couplings_.visit_chunks(flat);
    couplings_of_.visit_chunks(
        [&](const void* key, const std::vector<std::vector<CapId>>& chunk) {
          std::size_t bytes = chunk.capacity() * sizeof(std::vector<CapId>);
          for (const auto& ids : chunk) bytes += ids.capacity() * sizeof(CapId);
          fn(key, bytes);
        });
  }

  /// Approximate deep heap bytes of the parasitic storage.
  size_t approx_bytes() const {
    size_t total = 0;
    visit_storage([&](const void*, size_t bytes) { total += bytes; });
    return total;
  }

 private:
  util::CowVec<double, 12> ground_cap_pf_;
  util::CowVec<double, 12> wire_res_kohm_;
  CouplingStore couplings_;
  util::CowVec<std::vector<CapId>, 9> couplings_of_;
};

}  // namespace tka::layout
