#include "layout/router.hpp"

namespace tka::layout {

double SinkSegments::length() const {
  double len = 0.0;
  for (const Segment& s : segments) len += s.length();
  return len;
}

double Route::total_length() const {
  double len = 0.0;
  for (const Segment& s : segments) len += s.length();
  return len;
}

std::vector<Route> route_all(const net::Netlist& nl, const Placement& placement) {
  std::vector<Route> routes(nl.num_nets());
  for (net::NetId n = 0; n < nl.num_nets(); ++n) {
    Route& r = routes[n];
    r.net = n;
    const XY src = placement.driver_of(nl, n);
    for (const net::PinRef& pin : nl.net(n).fanouts) {
      const XY dst = placement.gate(pin.gate);
      SinkSegments sink;
      sink.pin = pin;
      // L-route: horizontal run at the driver's y, then vertical drop.
      if (src.x != dst.x) sink.segments.push_back(make_h(src.y, src.x, dst.x));
      if (src.y != dst.y) sink.segments.push_back(make_v(dst.x, src.y, dst.y));
      r.segments.insert(r.segments.end(), sink.segments.begin(), sink.segments.end());
      r.sinks.push_back(std::move(sink));
    }
    // A net with no fanout (dangling primary output) still gets a stub so
    // it has nonzero parasitics.
    if (r.segments.empty()) r.segments.push_back(make_h(src.y, src.x, src.x + 2.0));
  }
  return routes;
}

}  // namespace tka::layout
