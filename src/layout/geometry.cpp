#include "layout/geometry.hpp"

#include <algorithm>

namespace tka::layout {

Segment make_h(double y, double xa, double xb) {
  Segment s;
  s.y1 = s.y2 = y;
  s.x1 = std::min(xa, xb);
  s.x2 = std::max(xa, xb);
  return s;
}

Segment make_v(double x, double ya, double yb) {
  Segment s;
  s.x1 = s.x2 = x;
  s.y1 = std::min(ya, yb);
  s.y2 = std::max(ya, yb);
  return s;
}

ParallelRun parallel_run(const Segment& a, const Segment& b) {
  ParallelRun run;
  if (a.horizontal() && b.horizontal()) {
    const double lo = std::max(a.x1, b.x1);
    const double hi = std::min(a.x2, b.x2);
    if (hi > lo) {
      run.overlap = hi - lo;
      run.distance = std::abs(a.y1 - b.y1);
    }
  } else if (a.vertical() && b.vertical()) {
    const double lo = std::max(a.y1, b.y1);
    const double hi = std::min(a.y2, b.y2);
    if (hi > lo) {
      run.overlap = hi - lo;
      run.distance = std::abs(a.x1 - b.x1);
    }
  }
  return run;
}

}  // namespace tka::layout
