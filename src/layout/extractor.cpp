#include "layout/extractor.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

#include "util/assert.hpp"

namespace tka::layout {
namespace {

// Spatial hashing of segments into coarse bins so coupling candidates are
// found without the O(S^2) all-pairs sweep.
struct BinKey {
  int bx = 0;
  int by = 0;
  friend bool operator==(const BinKey&, const BinKey&) = default;
};

struct BinKeyHash {
  size_t operator()(const BinKey& k) const {
    return std::hash<long long>()((static_cast<long long>(k.bx) << 32) ^
                                  static_cast<unsigned>(k.by));
  }
};

struct SegRef {
  net::NetId net;
  const Segment* seg;
};

}  // namespace

Parasitics extract(const net::Netlist& nl, const std::vector<Route>& routes,
                   const ExtractorOptions& opt) {
  TKA_ASSERT(routes.size() == nl.num_nets());
  Parasitics par(nl.num_nets());

  // Wire RC from route length.
  for (const Route& r : routes) {
    const double len = r.total_length();
    par.add_ground_cap(r.net, len * opt.cap_per_um);
    par.add_wire_res(r.net, len * opt.res_per_um);
  }

  // Bin all segments; bin size = coupling window so only neighboring bins
  // need to be compared.
  const double bin = std::max(opt.max_coupling_dist * 2.0, 1.0);
  std::unordered_map<BinKey, std::vector<SegRef>, BinKeyHash> bins;
  auto bins_of_segment = [&](const Segment& s) {
    std::vector<BinKey> keys;
    const int bx0 = static_cast<int>(std::floor(std::min(s.x1, s.x2) / bin));
    const int bx1 = static_cast<int>(std::floor(std::max(s.x1, s.x2) / bin));
    const int by0 = static_cast<int>(std::floor(std::min(s.y1, s.y2) / bin));
    const int by1 = static_cast<int>(std::floor(std::max(s.y1, s.y2) / bin));
    for (int bx = bx0; bx <= bx1; ++bx) {
      for (int by = by0; by <= by1; ++by) keys.push_back({bx, by});
    }
    return keys;
  };
  for (const Route& r : routes) {
    for (const Segment& s : r.segments) {
      for (const BinKey& k : bins_of_segment(s)) bins[k].push_back({r.net, &s});
    }
  }

  // Accumulate coupling per net pair. A segment pair can meet in several
  // bins; `seen` guarantees each pair contributes exactly once.
  std::map<std::pair<net::NetId, net::NetId>, double> coupling;
  std::set<std::pair<const Segment*, const Segment*>> seen;
  auto consider = [&](const SegRef& a, const SegRef& b) {
    if (a.net == b.net) return;
    const auto seg_key = std::minmax(a.seg, b.seg);
    if (!seen.insert({seg_key.first, seg_key.second}).second) return;
    const ParallelRun run = parallel_run(*a.seg, *b.seg);
    if (run.overlap <= 0.0 || run.distance > opt.max_coupling_dist) return;
    const double dist = std::max(run.distance, opt.min_spacing);
    const double cap = opt.coupling_per_um * run.overlap * (opt.min_spacing / dist);
    const auto key = std::minmax(a.net, b.net);
    coupling[{key.first, key.second}] += cap;
  };
  for (auto& [key, segs] : bins) {
    // Within-bin pairs.
    for (size_t i = 0; i < segs.size(); ++i) {
      for (size_t j = i + 1; j < segs.size(); ++j) consider(segs[i], segs[j]);
    }
    // Neighbor bins (only the 4 forward neighbors to avoid double counting).
    static constexpr int kNbr[4][2] = {{1, 0}, {0, 1}, {1, 1}, {1, -1}};
    for (const auto& d : kNbr) {
      const BinKey nk{key.bx + d[0], key.by + d[1]};
      auto it = bins.find(nk);
      if (it == bins.end()) continue;
      for (const SegRef& a : segs) {
        for (const SegRef& b : it->second) consider(a, b);
      }
    }
  }

  std::vector<std::pair<std::pair<net::NetId, net::NetId>, double>> pairs(
      coupling.begin(), coupling.end());
  // Largest couplings first (deterministic tie-break on net ids).
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  size_t kept = 0;
  for (const auto& [nets, cap] : pairs) {
    if (cap < opt.min_coupling_pf) continue;
    if (opt.max_couplings != 0 && kept >= opt.max_couplings) break;
    par.add_coupling(nets.first, nets.second, cap);
    ++kept;
  }
  return par;
}

}  // namespace tka::layout
