#include "layout/placer.hpp"

#include <algorithm>

#include "net/topo.hpp"
#include "util/assert.hpp"

namespace tka::layout {

XY Placement::driver_of(const net::Netlist& nl, net::NetId n) const {
  const net::Net& net = nl.net(n);
  if (net.driver == net::kInvalidGate) return primary_input(n);
  return gate(net.driver);
}

Placement grid_place(const net::Netlist& nl, const PlacerOptions& options) {
  Rng rng(options.seed);
  const std::vector<int> levels = net_levels(nl);

  // Column of a gate = level of its output net; row = order within level.
  std::vector<XY> gate_xy(nl.num_gates());
  std::vector<int> level_fill;  // next free row per level
  for (net::GateId g = 0; g < nl.num_gates(); ++g) {
    const int lv = levels[nl.gate(g).output];
    if (static_cast<size_t>(lv) >= level_fill.size()) level_fill.resize(lv + 1, 0);
  }

  for (net::GateId g = 0; g < nl.num_gates(); ++g) {
    const int lv = levels[nl.gate(g).output];
    const int row = level_fill[lv]++;
    XY p;
    p.x = lv * options.col_pitch + rng.next_double(-options.jitter, options.jitter);
    p.y = row * options.row_pitch + rng.next_double(-options.jitter, options.jitter);
    gate_xy[g] = p;
  }

  // Primary-input pads sit in column -1, rows in declaration order.
  std::vector<XY> pi_xy(nl.num_nets());
  int pi_row = 0;
  for (net::NetId n = 0; n < nl.num_nets(); ++n) {
    if (!nl.net(n).is_primary_input) continue;
    XY p;
    p.x = -options.col_pitch;
    p.y = pi_row++ * options.row_pitch;
    pi_xy[n] = p;
  }
  return Placement(std::move(gate_xy), std::move(pi_xy));
}

}  // namespace tka::layout
