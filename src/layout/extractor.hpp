// Parasitic extraction from estimated routes. Stands in for the commercial
// extraction tool in the paper's flow.
//
// Per-net wire RC scales with total route length; coupling capacitance is
// assigned to net pairs whose segments run in parallel within a coupling
// window, proportional to overlap length and inversely to separation —
// the standard first-order model.
#pragma once

#include <cstddef>

#include "layout/parasitics.hpp"
#include "layout/router.hpp"

namespace tka::layout {

/// Extraction constants (0.13um-flavored; um / pF / kOhm).
struct ExtractorOptions {
  double cap_per_um = 0.00008;       ///< ground cap per um of wire (pF)
  double res_per_um = 0.0004;        ///< wire resistance per um (kOhm)
  double coupling_per_um = 0.00018;  ///< coupling cap per um at min spacing (pF)
  double min_spacing = 1.0;          ///< reference spacing (um)
  double max_coupling_dist = 8.0;    ///< beyond this separation, no coupling
  double min_coupling_pf = 1e-5;     ///< drop couplings below this value
  size_t max_couplings = 0;          ///< keep only the largest N (0 = all)
};

/// Extracts a full Parasitics database from the routes.
Parasitics extract(const net::Netlist& nl, const std::vector<Route>& routes,
                   const ExtractorOptions& options);

}  // namespace tka::layout
