// Window-robustness study: how stable is the top-k elimination set under
// input-arrival uncertainty?
//
// Timing windows depend on input constraints, which are rarely exact at the
// point in the flow where crosstalk is fixed. This example Monte-Carlo
// samples the primary-input arrivals, re-runs the noise fixpoint for each
// sample with and without the (nominally chosen) top-k fix applied, and
// reports the delay distributions — showing that the set chosen at the
// nominal corner keeps most of its value across the window ensemble.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "gen/circuit_generator.hpp"
#include "noise/coupling_calc.hpp"
#include "noise/iterative.hpp"
#include "topk/topk_engine.hpp"
#include "util/rng.hpp"

using namespace tka;

namespace {

struct Stats {
  double mean = 0.0;
  double p95 = 0.0;
  double worst = 0.0;
};

Stats summarize(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  Stats s;
  for (double v : samples) s.mean += v;
  s.mean /= static_cast<double>(samples.size());
  s.p95 = samples[samples.size() * 95 / 100];
  s.worst = samples.back();
  return s;
}

}  // namespace

int main() {
  gen::GeneratorParams params;
  params.name = "robust";
  params.num_gates = 100;
  params.target_couplings = 400;
  params.seed = 31337;
  gen::GeneratedCircuit ckt = gen::generate_circuit(params);

  sta::DelayModel model(*ckt.netlist, ckt.parasitics);
  noise::AnalyticCouplingCalculator calc(ckt.parasitics, model);
  topk::TopkEngine engine(*ckt.netlist, ckt.parasitics, model, calc);

  // Choose the fix at the nominal corner.
  const int k = 8;
  topk::TopkOptions opt;
  opt.k = k;
  opt.mode = topk::Mode::kElimination;
  opt.iterative.sta = ckt.sta_options();
  const topk::TopkResult nominal = engine.run(opt);
  std::printf("nominal corner: all-aggressor %.4f ns -> fixed %.4f ns "
              "(top-%d set)\n\n",
              nominal.baseline_delay, nominal.evaluated_delay, k);

  // Monte-Carlo over input arrivals: jitter every PI window by up to +/-50%
  // of the nominal spread.
  const int samples = 40;
  Rng rng(99);
  std::vector<double> unfixed;
  std::vector<double> fixed;
  noise::CouplingMask mask_all =
      noise::CouplingMask::all(ckt.parasitics.num_couplings());
  noise::CouplingMask mask_fixed = mask_all;
  for (layout::CapId id : nominal.members) mask_fixed.set(id, false);

  for (int s = 0; s < samples; ++s) {
    std::vector<sta::InputArrival> jittered = ckt.arrivals;
    for (net::NetId n : ckt.netlist->primary_inputs()) {
      const double scale = rng.next_double(0.5, 1.5);
      jittered[n].eat *= scale;
      jittered[n].lat = jittered[n].eat +
                        (ckt.arrivals[n].lat - ckt.arrivals[n].eat) *
                            rng.next_double(0.5, 1.5);
    }
    noise::IterativeOptions it;
    const std::vector<sta::InputArrival>* table = &jittered;
    it.sta.input_arrival = [table](net::NetId n) {
      return n < table->size() ? (*table)[n] : sta::InputArrival{};
    };
    unfixed.push_back(noise::analyze_iterative(*ckt.netlist, ckt.parasitics,
                                               model, calc, mask_all, it)
                          .noisy_delay);
    fixed.push_back(noise::analyze_iterative(*ckt.netlist, ckt.parasitics,
                                             model, calc, mask_fixed, it)
                        .noisy_delay);
  }

  const Stats u = summarize(unfixed);
  const Stats f = summarize(fixed);
  std::printf("%-12s %10s %10s %10s\n", "", "mean", "p95", "worst");
  std::printf("%-12s %10.4f %10.4f %10.4f\n", "unfixed", u.mean, u.p95, u.worst);
  std::printf("%-12s %10.4f %10.4f %10.4f\n", "fixed", f.mean, f.p95, f.worst);
  std::printf("\nmean improvement across the window ensemble: %.1f ps "
              "(nominal promised %.1f ps)\n",
              (u.mean - f.mean) * 1e3,
              (nominal.baseline_delay - nominal.evaluated_delay) * 1e3);
  return 0;
}
