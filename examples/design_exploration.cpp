// Design exploration: finding a "good" value of k — the paper's stated
// future work ("finding a 'good' value of k for reasonably fixing noise
// violations"). Sweeps the elimination cardinality, evaluates each winning
// set exactly, and reports the knee of the delay-vs-effort curve using a
// diminishing-returns rule: stop where the marginal gain of the next fix
// drops below a fraction of the average gain so far.
#include <cstdio>
#include <vector>

#include "gen/circuit_generator.hpp"
#include "noise/coupling_calc.hpp"
#include "topk/topk_engine.hpp"

using namespace tka;

int main() {
  gen::GeneratorParams params;
  params.name = "explore";
  params.num_gates = 120;
  params.target_couplings = 500;
  params.seed = 777;
  gen::GeneratedCircuit ckt = gen::generate_circuit(params);

  sta::DelayModel model(*ckt.netlist, ckt.parasitics);
  noise::AnalyticCouplingCalculator calc(ckt.parasitics, model);
  topk::TopkEngine engine(*ckt.netlist, ckt.parasitics, model, calc);
  noise::IterativeOptions it;
  it.sta = ckt.sta_options();

  const int max_k = 24;
  topk::TopkOptions opt;
  opt.k = max_k;
  opt.mode = topk::Mode::kElimination;
  opt.iterative.sta = ckt.sta_options();
  const topk::TopkResult res = engine.run(opt);

  std::printf("design %s: all-aggressor delay %.4f ns, noiseless %.4f ns\n\n",
              ckt.netlist->name().c_str(), res.baseline_delay,
              res.reference_delay);
  std::printf("%4s %12s %12s %12s\n", "k", "delay (ns)", "gain (ps)",
              "gain/fix (ps)");

  std::vector<double> delay_at(max_k + 1, res.baseline_delay);
  double running = res.baseline_delay;
  for (int k = 1; k <= max_k; ++k) {
    double best = running;
    auto consider = [&](const std::vector<layout::CapId>& members) {
      if (members.empty()) return;
      const double d = engine.evaluate_set(members, topk::Mode::kElimination, it);
      if (d < best) best = d;
    };
    consider(res.set_by_k[static_cast<size_t>(k) - 1]);
    for (const auto& m : res.finalists_by_k[static_cast<size_t>(k) - 1]) consider(m);
    running = best;
    delay_at[k] = best;
    const double total_gain = (res.baseline_delay - best) * 1e3;
    std::printf("%4d %12.4f %12.1f %12.1f\n", k, best,
                (delay_at[k - 1] - best) * 1e3, total_gain / k);
  }

  // Knee rule: smallest k whose next-step marginal gain falls below 25% of
  // the average gain per fix achieved so far.
  int good_k = max_k;
  for (int k = 1; k < max_k; ++k) {
    const double avg_gain = (res.baseline_delay - delay_at[k]) / k;
    const double next_gain = delay_at[k] - delay_at[k + 1];
    if (avg_gain > 0 && next_gain < 0.25 * avg_gain) {
      good_k = k;
      break;
    }
  }
  std::printf("\nsuggested k = %d: fixing %d couplings recovers %.1f ps "
              "(%.0f%% of the total noise);\nfurther fixes return <25%% of "
              "the average gain per fix.\n",
              good_k, good_k, (res.baseline_delay - delay_at[good_k]) * 1e3,
              100.0 * (res.baseline_delay - delay_at[good_k]) /
                  (res.baseline_delay - res.reference_delay));
  return 0;
}
