// Aggressor report: per-victim noise triage for the nets on and near the
// critical path, plus design-database exports (SPEF-lite parasitics and a
// Graphviz view with the top-k set highlighted). The kind of report a
// signoff engineer reads before deciding what to shield.
#include <algorithm>
#include <cstdio>
#include <fstream>

#include "gen/circuit_generator.hpp"
#include "io/dot_writer.hpp"
#include "io/spef_lite.hpp"
#include "noise/coupling_calc.hpp"
#include "noise/envelope_builder.hpp"
#include "noise/iterative.hpp"
#include "sta/critical_path.hpp"
#include "topk/topk_engine.hpp"

using namespace tka;

int main() {
  gen::GeneratorParams params;
  params.name = "report";
  params.num_gates = 60;
  params.target_couplings = 200;
  params.seed = 4242;
  gen::GeneratedCircuit ckt = gen::generate_circuit(params);
  const net::Netlist& nl = *ckt.netlist;

  sta::DelayModel model(nl, ckt.parasitics);
  noise::AnalyticCouplingCalculator calc(ckt.parasitics, model);
  const noise::NoiseReport rep = noise::analyze_iterative(
      nl, ckt.parasitics, model, calc,
      noise::CouplingMask::all(ckt.parasitics.num_couplings()),
      [&] {
        noise::IterativeOptions it;
        it.sta = ckt.sta_options();
        return it;
      }());

  std::printf("design %s: noiseless %.4f ns, noisy %.4f ns\n\n",
              nl.name().c_str(), rep.noiseless_delay, rep.noisy_delay);

  // Rank victims by their delay noise and show each one's worst aggressors.
  std::vector<net::NetId> victims;
  for (net::NetId n = 0; n < nl.num_nets(); ++n) {
    if (rep.delay_noise[n] > 1e-6) victims.push_back(n);
  }
  std::sort(victims.begin(), victims.end(), [&](net::NetId a, net::NetId b) {
    return rep.delay_noise[a] > rep.delay_noise[b];
  });
  if (victims.size() > 8) victims.resize(8);

  noise::EnvelopeBuilder builder(nl, ckt.parasitics, calc, rep.noisy_windows);
  std::printf("worst victims (delay noise, worst aggressors by pulse peak):\n");
  for (net::NetId v : victims) {
    std::printf("  %-10s dn=%6.1f ps  window=[%.3f, %.3f]\n",
                nl.net(v).name.c_str(), rep.delay_noise[v] * 1e3,
                rep.noisy_windows[v].eat, rep.noisy_windows[v].lat);
    std::vector<std::pair<double, layout::CapId>> ranked;
    for (layout::CapId id : ckt.parasitics.couplings_of(v)) {
      ranked.emplace_back(builder.pulse_shape(v, id).peak, id);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    for (size_t i = 0; i < std::min<size_t>(3, ranked.size()); ++i) {
      const layout::CouplingCap& cc = ckt.parasitics.coupling(ranked[i].second);
      std::printf("      aggressor %-10s cap=%.4f pF  peak=%.3f V\n",
                  nl.net(cc.other(v)).name.c_str(), cc.cap_pf, ranked[i].first);
    }
  }

  // Top-5 elimination set, exported to a Graphviz view.
  topk::TopkEngine engine(nl, ckt.parasitics, model, calc);
  topk::TopkOptions opt;
  opt.k = 5;
  opt.mode = topk::Mode::kElimination;
  opt.iterative.sta = ckt.sta_options();
  const topk::TopkResult res = engine.run(opt);
  std::printf("\ntop-5 elimination set (fixing these recovers %.1f ps):\n",
              (res.baseline_delay - res.evaluated_delay) * 1e3);
  for (layout::CapId id : res.members) {
    const layout::CouplingCap& cc = ckt.parasitics.coupling(id);
    std::printf("  %s ~ %s (%.4f pF)\n", nl.net(cc.net_a).name.c_str(),
                nl.net(cc.net_b).name.c_str(), cc.cap_pf);
  }

  {
    std::ofstream dot("aggressor_report.dot");
    io::write_dot(dot, nl, &ckt.parasitics, res.members);
  }
  io::write_spef_lite_file("aggressor_report.spef", nl, ckt.parasitics);
  std::printf("\nwrote aggressor_report.dot (top-k highlighted) and "
              "aggressor_report.spef\n");
  return 0;
}
