// Quickstart: the whole API on a small hand-built design.
//
//   1. Build a netlist (the classic ISCAS-85 c17) from .bench text.
//   2. Place, route and extract coupling parasitics.
//   3. Run noise-aware timing (the iterative window/noise fixpoint).
//   4. Ask for the top-2 aggressor addition set and the top-2 elimination
//      set, and show what each does to the circuit delay.
#include <cstdio>

#include "io/bench_reader.hpp"
#include "layout/extractor.hpp"
#include "layout/placer.hpp"
#include "layout/router.hpp"
#include "noise/coupling_calc.hpp"
#include "noise/iterative.hpp"
#include "sta/critical_path.hpp"
#include "topk/topk_engine.hpp"

using namespace tka;

static const char* kC17 = R"(
INPUT(N1)
INPUT(N2)
INPUT(N3)
INPUT(N6)
INPUT(N7)
OUTPUT(N22)
OUTPUT(N23)
N10 = NAND(N1, N3)
N11 = NAND(N3, N6)
N16 = NAND(N2, N11)
N19 = NAND(N11, N7)
N22 = NAND(N10, N16)
N23 = NAND(N16, N19)
)";

int main() {
  // 1. Netlist.
  auto nl = io::read_bench_string(kC17, "c17");
  std::printf("design %s: %zu gates, %zu nets\n", nl->name().c_str(),
              nl->num_gates(), nl->num_nets());

  // 2. Layout + extraction. Tighten the coupling window so even this tiny
  //    placement yields a handful of aggressor-victim couplings.
  layout::PlacerOptions place_opt;
  place_opt.row_pitch = 2.5;
  const layout::Placement placement = layout::grid_place(*nl, place_opt);
  const std::vector<layout::Route> routes = layout::route_all(*nl, placement);
  layout::ExtractorOptions ex;
  ex.max_coupling_dist = 10.0;
  const layout::Parasitics par = layout::extract(*nl, routes, ex);
  std::printf("extracted %zu coupling caps\n", par.num_couplings());

  // 3. Noise-aware timing.
  sta::DelayModel model(*nl, par);
  noise::AnalyticCouplingCalculator calc(par, model);
  const noise::CouplingMask all = noise::CouplingMask::all(par.num_couplings());
  const noise::NoiseReport report = noise::analyze_iterative(*nl, par, model, calc, all);
  std::printf("noiseless delay %.4f ns -> noisy delay %.4f ns "
              "(%d fixpoint iterations)\n",
              report.noiseless_delay, report.noisy_delay, report.iterations);

  const sta::StaResult sta_res = sta::run_sta(*nl, model);
  const sta::TimingPath crit = sta::critical_path(*nl, sta_res);
  std::printf("critical path:");
  for (net::NetId n : crit.nets) std::printf(" %s", nl->net(n).name.c_str());
  std::printf("\n\n");

  // 4. Top-k sets.
  topk::TopkEngine engine(*nl, par, model, calc);
  for (const topk::Mode mode : {topk::Mode::kAddition, topk::Mode::kElimination}) {
    topk::TopkOptions opt;
    opt.k = 2;
    opt.mode = mode;
    opt.beam_cap = 0;
    const topk::TopkResult res = engine.run(opt);
    std::printf("top-2 %s set:", mode == topk::Mode::kAddition ? "addition"
                                                               : "elimination");
    for (layout::CapId id : res.members) {
      const layout::CouplingCap& cc = par.coupling(id);
      std::printf("  (%s ~ %s, %.4f pF)", nl->net(cc.net_a).name.c_str(),
                  nl->net(cc.net_b).name.c_str(), cc.cap_pf);
    }
    std::printf("\n  circuit delay %.4f ns -> %.4f ns\n", res.baseline_delay,
                res.evaluated_delay);
  }
  return 0;
}
