// Noise-mitigation loop: the paper's intended use of the top-k elimination
// set (§1). Each repair cycle asks for the top-k couplings to fix, fixes
// them (modeled as grounded-shield insertion: the coupling cap becomes ground cap), and
// re-runs the analysis — exactly the "each cycle of delay noise mitigation"
// flow. Watch the circuit delay walk from the fully-noisy delay toward the
// noiseless floor.
#include <cstdio>

#include "gen/circuit_generator.hpp"
#include "noise/coupling_calc.hpp"
#include "noise/iterative.hpp"
#include "topk/topk_engine.hpp"

using namespace tka;

int main() {
  gen::GeneratorParams params;
  params.name = "mitigate";
  params.num_gates = 150;
  params.target_couplings = 600;
  params.seed = 20240707;
  gen::GeneratedCircuit ckt = gen::generate_circuit(params);
  std::printf("design %s: %zu gates, %zu nets, %zu couplings\n\n",
              ckt.netlist->name().c_str(), ckt.netlist->num_gates(),
              ckt.netlist->num_nets(), ckt.parasitics.num_couplings());

  const int k_per_cycle = 5;
  const int cycles = 6;

  sta::DelayModel model(*ckt.netlist, ckt.parasitics);
  noise::AnalyticCouplingCalculator calc(ckt.parasitics, model);
  noise::IterativeOptions it;
  it.sta = ckt.sta_options();

  const double floor_delay =
      noise::analyze_iterative(*ckt.netlist, ckt.parasitics, model, calc,
                               noise::CouplingMask::none(ckt.parasitics.num_couplings()),
                               it)
          .noisy_delay;

  std::printf("%6s %14s %14s  %s\n", "cycle", "delay (ns)", "noise left",
              "fixed couplings");
  for (int cycle = 0; cycle <= cycles; ++cycle) {
    const noise::NoiseReport rep = noise::analyze_iterative(
        *ckt.netlist, ckt.parasitics, model, calc,
        noise::CouplingMask::all(ckt.parasitics.num_couplings()), it);
    std::printf("%6d %14.4f %14.4f", cycle, rep.noisy_delay,
                rep.noisy_delay - floor_delay);
    if (cycle == cycles) {
      std::printf("  (done)\n");
      break;
    }

    // Ask for this cycle's top-k elimination set...
    topk::TopkEngine engine(*ckt.netlist, ckt.parasitics, model, calc);
    topk::TopkOptions opt;
    opt.k = k_per_cycle;
    opt.mode = topk::Mode::kElimination;
    opt.iterative.sta = ckt.sta_options();
    const topk::TopkResult res = engine.run(opt);

    // ... and fix those couplings in the physical database.
    std::printf("  ");
    for (layout::CapId id : res.members) {
      const layout::CouplingCap& cc = ckt.parasitics.coupling(id);
      std::printf("(%s~%s) ", ckt.netlist->net(cc.net_a).name.c_str(),
                  ckt.netlist->net(cc.net_b).name.c_str());
      ckt.parasitics.shield_coupling(id);
    }
    std::printf("\n");
  }
  std::printf("\nnoiseless floor: %.4f ns\n", floor_delay);
  return 0;
}
